//! The campaign plan: schema, validation, and the hand-rolled parser.
//!
//! A plan is a small JSON document describing a matrix of simulation
//! requests — the paper's evaluation shape (five apps × hand-swept
//! configs, Fig. 10 sweeping QPI bandwidth point by point) made into a
//! first-class, committable artifact:
//!
//! ```json
//! {
//!   "schema": "apir.campaign.plan.v1",
//!   "scale": "tiny",
//!   "apps": ["SPEC-BFS", "SPEC-SSSP"],
//!   "seeds": [1, 2, 3],
//!   "configs": [
//!     {"id": "base"},
//!     {"id": "chaos", "chaos": true, "retries": 2},
//!     {"id": "lowbw", "qpi_gbps": 3.5, "lsu_window": 8}
//!   ]
//! }
//! ```
//!
//! Every `(app, config, seed)` triple becomes one job. A config entry
//! starts from the app's synthesized + tuned baseline configuration and
//! applies its [`Overrides`]; `"chaos": true` additionally arms the
//! seeded fault-injection preset ([`apir_fabric::FaultConfig::chaos`])
//! with the cell's seed, so fault campaigns are just plan cells.
//! `"retries": N` re-runs a panicking or failing cell up to `N` extra
//! times — each retry with a deterministically bumped fault salt — and
//! records an error only once every attempt has failed.
//!
//! Parsing is strict: unknown apps, unknown keys, a wrong schema
//! string, empty/duplicate apps, seeds, or config ids are all hard
//! errors ([`PlanError`]) — the CLI turns them into exit-2 diagnostics,
//! pinned by the malformed corpus under `tests/plans/`.

use apir_bench::scale::APP_NAMES;
use apir_bench::Scale;
use apir_fabric::FabricConfig;
use apir_util::json::{parse, Json};

/// The only plan schema this engine accepts.
pub const PLAN_SCHEMA: &str = "apir.campaign.plan.v1";

/// A validated campaign plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignPlan {
    /// Workload scale every cell runs at.
    pub scale: Scale,
    /// Builtin app names (validated against the registry, unique).
    pub apps: Vec<String>,
    /// Seeds (unique). A seed keys the cell and, for chaos configs,
    /// drives the fault plan; fault-free configs run identically across
    /// seeds but still emit one record per seed.
    pub seeds: Vec<u64>,
    /// Configuration variants (unique non-empty ids).
    pub configs: Vec<ConfigVariant>,
}

impl CampaignPlan {
    /// Number of cells the plan expands to.
    pub fn cells(&self) -> usize {
        self.apps.len() * self.seeds.len() * self.configs.len()
    }
}

/// One configuration variant of the plan matrix.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConfigVariant {
    /// Stable identifier, part of every result record's key.
    pub id: String,
    /// Arm the seeded chaos fault-injection preset for this variant.
    pub chaos: bool,
    /// Extra attempts for a failing or panicking cell; each retry uses
    /// a deterministically bumped fault salt
    /// ([`crate::engine::retry_seed`]), and an error is recorded only
    /// after every attempt fails. `0` (the default) records the first
    /// failure immediately.
    pub retries: u32,
    /// Knob overrides applied on top of the synthesized baseline.
    pub overrides: Overrides,
}

/// The `FabricConfig` knobs a plan may override. Everything is optional;
/// an empty override set runs the app's synthesized + tuned baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Overrides {
    /// `FabricConfig::pipelines_per_set`.
    pub pipelines_per_set: Option<usize>,
    /// `FabricConfig::queue_banks`.
    pub queue_banks: Option<usize>,
    /// `FabricConfig::queue_capacity`.
    pub queue_capacity: Option<usize>,
    /// `FabricConfig::rule_lanes`.
    pub rule_lanes: Option<usize>,
    /// `FabricConfig::lsu_window`.
    pub lsu_window: Option<usize>,
    /// `FabricConfig::rendezvous_window`.
    pub rendezvous_window: Option<usize>,
    /// `FabricConfig::max_cycles` (a deliberately small value is the
    /// supported way to plant a failing cell in a plan).
    pub max_cycles: Option<u64>,
    /// `FabricConfig::dense_tick` (differential runs of the dense
    /// scheduler oracle at campaign scale).
    pub dense_tick: Option<bool>,
    /// `MemConfig::cache_kb`.
    pub cache_kb: Option<usize>,
    /// `MemConfig::qpi_gbps` (the Fig. 10 sweep axis).
    pub qpi_gbps: Option<f64>,
    /// `MemConfig::max_inflight_misses`.
    pub max_inflight_misses: Option<usize>,
}

impl Overrides {
    /// Applies the present knobs to `cfg`.
    pub fn apply(&self, cfg: &mut FabricConfig) {
        if let Some(v) = self.pipelines_per_set {
            cfg.pipelines_per_set = v;
        }
        if let Some(v) = self.queue_banks {
            cfg.queue_banks = v;
        }
        if let Some(v) = self.queue_capacity {
            cfg.queue_capacity = v;
        }
        if let Some(v) = self.rule_lanes {
            cfg.rule_lanes = v;
        }
        if let Some(v) = self.lsu_window {
            cfg.lsu_window = v;
        }
        if let Some(v) = self.rendezvous_window {
            cfg.rendezvous_window = v;
        }
        if let Some(v) = self.max_cycles {
            cfg.max_cycles = v;
        }
        if let Some(v) = self.dense_tick {
            cfg.dense_tick = v;
        }
        if let Some(v) = self.cache_kb {
            cfg.mem.cache_kb = v;
        }
        if let Some(v) = self.qpi_gbps {
            cfg.mem.qpi_gbps = v;
        }
        if let Some(v) = self.max_inflight_misses {
            cfg.mem.max_inflight_misses = v;
        }
    }
}

/// Why a plan was rejected. Rendered verbatim in the CLI's exit-2
/// diagnostic, so messages name the offending entity precisely.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError {
    /// What is wrong with the plan.
    pub msg: String,
}

impl PlanError {
    fn new(msg: impl Into<String>) -> Self {
        PlanError { msg: msg.into() }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid campaign plan: {}", self.msg)
    }
}

impl std::error::Error for PlanError {}

fn want_u64(v: &Json, what: &str) -> Result<u64, PlanError> {
    v.as_u64()
        .ok_or_else(|| PlanError::new(format!("{what} must be a non-negative integer")))
}

fn want_usize(v: &Json, what: &str) -> Result<usize, PlanError> {
    Ok(want_u64(v, what)? as usize)
}

/// Parses and validates a plan document.
///
/// # Errors
///
/// [`PlanError`] on malformed JSON, a wrong/missing schema string, an
/// unknown app, empty or duplicated `apps`/`seeds`/config ids, or any
/// unknown key (top-level or inside a config entry).
pub fn parse_plan(text: &str) -> Result<CampaignPlan, PlanError> {
    let doc = parse(text).map_err(|e| PlanError::new(format!("not valid JSON: {e}")))?;
    let Json::Obj(members) = &doc else {
        return Err(PlanError::new("plan must be a JSON object"));
    };

    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == PLAN_SCHEMA => {}
        Some(s) => {
            return Err(PlanError::new(format!(
                "unsupported plan schema `{s}` (this engine reads `{PLAN_SCHEMA}`)"
            )))
        }
        None => {
            return Err(PlanError::new(format!(
                "missing `schema` (want `{PLAN_SCHEMA}`)"
            )))
        }
    }

    let mut scale = Scale::Tiny;
    let mut apps: Vec<String> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut configs: Vec<ConfigVariant> = Vec::new();
    let mut saw = (false, false, false);

    for (key, value) in members {
        match key.as_str() {
            "schema" => {}
            "scale" => {
                let s = value
                    .as_str()
                    .ok_or_else(|| PlanError::new("`scale` must be a string"))?;
                scale = Scale::parse(s).ok_or_else(|| {
                    PlanError::new(format!(
                        "unknown scale `{s}` (want tiny|small|medium|large)"
                    ))
                })?;
            }
            "apps" => {
                saw.0 = true;
                let arr = value
                    .as_arr()
                    .ok_or_else(|| PlanError::new("`apps` must be an array of app names"))?;
                for v in arr {
                    let name = v
                        .as_str()
                        .ok_or_else(|| PlanError::new("`apps` entries must be strings"))?;
                    if !APP_NAMES.contains(&name) {
                        return Err(PlanError::new(format!(
                            "unknown app `{name}` (known: {})",
                            APP_NAMES.join(", ")
                        )));
                    }
                    if apps.iter().any(|a| a == name) {
                        return Err(PlanError::new(format!("duplicate app `{name}`")));
                    }
                    apps.push(name.to_string());
                }
            }
            "seeds" => {
                saw.1 = true;
                let arr = value
                    .as_arr()
                    .ok_or_else(|| PlanError::new("`seeds` must be an array of integers"))?;
                for v in arr {
                    let seed = want_u64(v, "`seeds` entries")?;
                    if seeds.contains(&seed) {
                        return Err(PlanError::new(format!("duplicate seed {seed}")));
                    }
                    seeds.push(seed);
                }
            }
            "configs" => {
                saw.2 = true;
                let arr = value
                    .as_arr()
                    .ok_or_else(|| PlanError::new("`configs` must be an array of objects"))?;
                for v in arr {
                    configs.push(parse_config(v)?);
                }
            }
            other => {
                return Err(PlanError::new(format!("unknown plan key `{other}`")));
            }
        }
    }

    if !saw.0 || apps.is_empty() {
        return Err(PlanError::new(
            "`apps` must be a non-empty array of builtin app names",
        ));
    }
    if !saw.1 || seeds.is_empty() {
        return Err(PlanError::new(
            "`seeds` must be a non-empty array of integers (zero seeds means zero cells)",
        ));
    }
    if !saw.2 || configs.is_empty() {
        return Err(PlanError::new(
            "`configs` must be a non-empty array of config variants",
        ));
    }
    for (i, c) in configs.iter().enumerate() {
        if configs[..i].iter().any(|o| o.id == c.id) {
            return Err(PlanError::new(format!("duplicate config id `{}`", c.id)));
        }
    }

    Ok(CampaignPlan {
        scale,
        apps,
        seeds,
        configs,
    })
}

fn parse_config(v: &Json) -> Result<ConfigVariant, PlanError> {
    let Json::Obj(members) = v else {
        return Err(PlanError::new("`configs` entries must be objects"));
    };
    let mut variant = ConfigVariant::default();
    let mut saw_id = false;
    for (key, value) in members {
        let what = |field: &str| format!("config `{}`: `{field}`", variant.id);
        match key.as_str() {
            "id" => {
                let id = value
                    .as_str()
                    .ok_or_else(|| PlanError::new("config `id` must be a string"))?;
                if id.is_empty() {
                    return Err(PlanError::new("config `id` must be non-empty"));
                }
                variant.id = id.to_string();
                saw_id = true;
            }
            "chaos" => {
                variant.chaos = value
                    .as_bool()
                    .ok_or_else(|| PlanError::new(format!("{} must be a bool", what("chaos"))))?;
            }
            "retries" => {
                let n = want_u64(value, &what("retries"))?;
                variant.retries = u32::try_from(n).map_err(|_| {
                    PlanError::new(format!("{} is absurdly large ({n})", what("retries")))
                })?;
            }
            "pipelines_per_set" => {
                variant.overrides.pipelines_per_set =
                    Some(want_usize(value, &what("pipelines_per_set"))?);
            }
            "queue_banks" => {
                variant.overrides.queue_banks = Some(want_usize(value, &what("queue_banks"))?);
            }
            "queue_capacity" => {
                variant.overrides.queue_capacity =
                    Some(want_usize(value, &what("queue_capacity"))?);
            }
            "rule_lanes" => {
                variant.overrides.rule_lanes = Some(want_usize(value, &what("rule_lanes"))?);
            }
            "lsu_window" => {
                variant.overrides.lsu_window = Some(want_usize(value, &what("lsu_window"))?);
            }
            "rendezvous_window" => {
                variant.overrides.rendezvous_window =
                    Some(want_usize(value, &what("rendezvous_window"))?);
            }
            "max_cycles" => {
                variant.overrides.max_cycles = Some(want_u64(value, &what("max_cycles"))?);
            }
            "dense_tick" => {
                variant.overrides.dense_tick = Some(value.as_bool().ok_or_else(|| {
                    PlanError::new(format!("{} must be a bool", what("dense_tick")))
                })?);
            }
            "cache_kb" => {
                variant.overrides.cache_kb = Some(want_usize(value, &what("cache_kb"))?);
            }
            "qpi_gbps" => {
                variant.overrides.qpi_gbps = Some(value.as_f64().ok_or_else(|| {
                    PlanError::new(format!("{} must be a number", what("qpi_gbps")))
                })?);
            }
            "max_inflight_misses" => {
                variant.overrides.max_inflight_misses =
                    Some(want_usize(value, &what("max_inflight_misses"))?);
            }
            other => {
                return Err(PlanError::new(format!(
                    "config `{}`: unknown key `{other}`",
                    variant.id
                )));
            }
        }
    }
    if !saw_id {
        return Err(PlanError::new("every config needs an `id`"));
    }
    Ok(variant)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_plan() -> &'static str {
        r#"{
          "schema": "apir.campaign.plan.v1",
          "scale": "tiny",
          "apps": ["SPEC-BFS", "SPEC-SSSP"],
          "seeds": [1, 2],
          "configs": [
            {"id": "base"},
            {"id": "chaos", "chaos": true},
            {"id": "lowbw", "qpi_gbps": 3.5, "lsu_window": 8}
          ]
        }"#
    }

    #[test]
    fn parses_a_valid_plan() {
        let plan = parse_plan(ok_plan()).unwrap();
        assert_eq!(plan.scale, Scale::Tiny);
        assert_eq!(plan.apps, ["SPEC-BFS", "SPEC-SSSP"]);
        assert_eq!(plan.seeds, [1, 2]);
        assert_eq!(plan.cells(), 2 * 2 * 3);
        assert!(!plan.configs[0].chaos);
        assert!(plan.configs[1].chaos);
        assert_eq!(plan.configs[2].overrides.qpi_gbps, Some(3.5));
        assert_eq!(plan.configs[2].overrides.lsu_window, Some(8));
    }

    #[test]
    fn parses_and_validates_retries() {
        let plan = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"r","chaos":true,"retries":3}]}"#,
        )
        .unwrap();
        assert_eq!(plan.configs[0].retries, 3);
        let plan = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"r"}]}"#,
        )
        .unwrap();
        assert_eq!(plan.configs[0].retries, 0, "retries defaults to zero");
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"r","retries":-1}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("`retries`"), "{e}");
    }

    #[test]
    fn scale_defaults_to_tiny() {
        let text = r#"{"schema":"apir.campaign.plan.v1","apps":["COOR-LU"],
                       "seeds":[7],"configs":[{"id":"x"}]}"#;
        assert_eq!(parse_plan(text).unwrap().scale, Scale::Tiny);
    }

    #[test]
    fn rejects_wrong_schema_and_missing_schema() {
        let e = parse_plan(r#"{"schema":"apir.campaign.plan.v9"}"#).unwrap_err();
        assert!(e.msg.contains("unsupported plan schema `apir.campaign.plan.v9`"), "{e}");
        let e = parse_plan(r#"{"apps":["SPEC-BFS"]}"#).unwrap_err();
        assert!(e.msg.contains("missing `schema`"), "{e}");
    }

    #[test]
    fn rejects_unknown_app_and_duplicates() {
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-FOO"],
                "seeds":[1],"configs":[{"id":"x"}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown app `SPEC-FOO`"), "{e}");
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS","SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"x"}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("duplicate app"), "{e}");
    }

    #[test]
    fn rejects_empty_seeds_and_duplicate_seeds() {
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[],"configs":[{"id":"x"}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("`seeds` must be a non-empty"), "{e}");
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[3,3],"configs":[{"id":"x"}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("duplicate seed 3"), "{e}");
    }

    #[test]
    fn rejects_unknown_keys_and_bad_config_entries() {
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"x"}],"bogus":1}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("unknown plan key `bogus`"), "{e}");
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"x","frobnicate":2}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("config `x`: unknown key `frobnicate`"), "{e}");
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"chaos":true}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("needs an `id`"), "{e}");
        let e = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["SPEC-BFS"],
                "seeds":[1],"configs":[{"id":"a"},{"id":"a"}]}"#,
        )
        .unwrap_err();
        assert!(e.msg.contains("duplicate config id `a`"), "{e}");
    }

    #[test]
    fn overrides_apply_only_present_knobs() {
        let plan = parse_plan(ok_plan()).unwrap();
        let base = FabricConfig::default();
        let mut cfg = base.clone();
        plan.configs[0].overrides.apply(&mut cfg);
        assert_eq!(
            format!("{cfg:?}"),
            format!("{base:?}"),
            "empty overrides are the identity"
        );
        plan.configs[2].overrides.apply(&mut cfg);
        assert_eq!(cfg.mem.qpi_gbps, 3.5);
        assert_eq!(cfg.lsu_window, 8);
        assert_eq!(cfg.queue_banks, base.queue_banks);
    }
}
