//! Plan expansion, job execution, and the deterministic merge.
//!
//! [`expand`] turns a plan into jobs **sorted by `(app, config, seed)`**
//! — the merge key. [`run_campaign`] dispatches them on the
//! work-stealing pool ([`apir_runtime::dispatch::run_ordered`]) and
//! streams one JSONL record per cell through the caller's sink in key
//! order, so the merged output of an 8-thread run is byte-identical to
//! a 1-thread run. A failing cell — a `FabricError`, a checker
//! rejection, or an outright panic — becomes a structured error record;
//! it never aborts the fleet.

use crate::plan::{CampaignPlan, ConfigVariant};
use apir_bench::experiments::{scale_cache, synthesized_cfg};
use apir_bench::scale::build_app;
use apir_bench::Scale;
use apir_fabric::{Fabric, FabricConfig, FabricError, FabricReport, FaultConfig};
use apir_util::Json;
use std::time::Instant;

/// Schema of the single-document results rendering ([`results_doc`]).
pub const RESULTS_SCHEMA: &str = "apir.campaign.results.v1";

/// One cell of the campaign matrix.
#[derive(Clone, Debug)]
pub struct Job {
    /// Builtin app name.
    pub app: String,
    /// The configuration variant (already validated).
    pub config: ConfigVariant,
    /// Cell seed (fault seed when `config.chaos`).
    pub seed: u64,
    /// Workload scale.
    pub scale: Scale,
}

impl Job {
    /// The merge key, also used in log lines: `app/config/seed`.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.app, self.config.id, self.seed)
    }
}

/// Expands a plan into its jobs, sorted by `(app, config id, seed)`.
/// The order is a pure function of the plan — it is the merge order of
/// the result stream, independent of thread count and scheduling.
pub fn expand(plan: &CampaignPlan) -> Vec<Job> {
    let mut jobs: Vec<Job> = Vec::with_capacity(plan.cells());
    for app in &plan.apps {
        for config in &plan.configs {
            for &seed in &plan.seeds {
                jobs.push(Job {
                    app: app.clone(),
                    config: config.clone(),
                    seed,
                    scale: plan.scale,
                });
            }
        }
    }
    jobs.sort_by(|a, b| {
        (a.app.as_str(), a.config.id.as_str(), a.seed)
            .cmp(&(b.app.as_str(), b.config.id.as_str(), b.seed))
    });
    jobs
}

/// A structured per-cell failure. Deterministic: the same job produces
/// the same error record on every run and every thread count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobError {
    /// Failure class: `deadlock`, `max_cycles`, `link_failed`,
    /// `rejected_by_lint`, `check`, or `panic`.
    pub kind: &'static str,
    /// Simulated cycle at the failure point, when the fabric got far
    /// enough to have one.
    pub cycle: Option<u64>,
    /// Human-readable detail.
    pub message: String,
    /// The rendered partial `apir.fabric.report.v2` document — with its
    /// `terminated: {kind, cycle}` stamp — when the fabric got far
    /// enough to have one ([`FabricError::partial_report_json`]).
    pub partial_report: Option<String>,
}

impl JobError {
    fn from_fabric(e: FabricError) -> Self {
        JobError {
            kind: e.kind(),
            cycle: e.failure_cycle(),
            partial_report: e.partial_report_json().map(|doc| doc.render()),
            message: e.to_string(),
        }
    }
}

/// The fabric configuration a job runs under: the app's synthesized +
/// cache-scaled + tuned baseline (the exact recipe of
/// `apir_bench::experiments::run_verified`), then the variant's
/// overrides, then the chaos preset when armed.
pub fn job_cfg(job: &Job, input: &apir_core::ProgramInput, tune: &dyn Fn(&mut FabricConfig)) -> FabricConfig {
    let mut cfg = synthesized_cfg(&job.app, job.scale);
    scale_cache(&mut cfg, input);
    tune(&mut cfg);
    job.config.overrides.apply(&mut cfg);
    if job.config.chaos {
        cfg.faults = FaultConfig::chaos(job.seed);
    }
    cfg
}

/// The multiplier behind the deterministic retry salt bump
/// (the 64-bit golden-ratio constant, so successive attempts land in
/// unrelated fault-RNG streams).
pub const RETRY_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// The fault seed attempt `attempt` of a cell runs under. Attempt 0 is
/// the cell's own seed (the merge key is unchanged by retries); each
/// later attempt bumps the salt deterministically, so a retried
/// campaign is still byte-reproducible.
pub fn retry_seed(seed: u64, attempt: u32) -> u64 {
    seed ^ u64::from(attempt).wrapping_mul(RETRY_SALT)
}

/// Runs one cell to completion: build, simulate, verify.
///
/// # Errors
///
/// A [`JobError`] classifying the fabric error or checker rejection.
/// Panics inside the fabric are *not* caught here — the dispatcher
/// captures them and the campaign records them as `kind: "panic"`.
pub fn run_job(job: &Job) -> Result<FabricReport, JobError> {
    run_job_attempt(job, 0)
}

/// [`run_job`] for one retry attempt: attempt 0 is the plain cell; a
/// later attempt re-arms the chaos preset with the bumped salt
/// ([`retry_seed`]) so the replay isn't doomed to repeat the failure.
pub fn run_job_attempt(job: &Job, attempt: u32) -> Result<FabricReport, JobError> {
    let app = build_app(&job.app, job.scale);
    let mut cfg = job_cfg(job, &app.input, &app.tune);
    if attempt > 0 && job.config.chaos {
        cfg.faults = FaultConfig::chaos(retry_seed(job.seed, attempt));
    }
    let report =
        Fabric::execute(&app.spec, &app.input, cfg).map_err(JobError::from_fabric)?;
    (app.check)(&report.mem_image).map_err(|message| JobError {
        kind: "check",
        cycle: Some(report.cycles),
        message,
        partial_report: None,
    })?;
    Ok(report)
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs one cell under its config's retry policy: up to
/// `1 + config.retries` attempts, each with the deterministically
/// bumped fault salt, recording an error (the *last* attempt's) only
/// once every attempt has failed. Panics are caught per attempt, so a
/// crashing cell is retried exactly like a failing one.
pub fn run_job_retrying(job: &Job) -> Result<FabricReport, JobError> {
    let mut last: Option<JobError> = None;
    for attempt in 0..=job.config.retries {
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_job_attempt(job, attempt)
        }));
        match caught {
            Ok(Ok(report)) => return Ok(report),
            Ok(Err(e)) => last = Some(e),
            Err(payload) => {
                last = Some(JobError {
                    kind: "panic",
                    cycle: None,
                    message: panic_text(payload),
                    partial_report: None,
                })
            }
        }
    }
    Err(last.expect("at least one attempt always runs"))
}

/// Renders one result record (one JSONL line). Key fields lead so the
/// stream is greppable; `status` is `"ok"` (with the full
/// `apir.fabric.report.v2` document inlined under `report`) or
/// `"error"` (with the structured [`JobError`] under `error`).
pub fn record(job: &Job, outcome: &Result<FabricReport, JobError>) -> Json {
    let mut members = vec![
        ("app".to_string(), Json::str(job.app.as_str())),
        ("config".to_string(), Json::str(job.config.id.as_str())),
        ("seed".to_string(), Json::U64(job.seed)),
    ];
    match outcome {
        Ok(report) => {
            members.push(("status".to_string(), Json::str("ok")));
            members.push(("report".to_string(), report.to_json_value()));
        }
        Err(e) => {
            members.push(("status".to_string(), Json::str("error")));
            members.push((
                "error".to_string(),
                Json::obj_sparse([
                    ("kind", Some(Json::str(e.kind))),
                    ("cycle", e.cycle.map(Json::U64)),
                    ("message", Some(Json::str(e.message.as_str()))),
                ]),
            ));
            // The partial report (with its `terminated` stamp) rides
            // along when the fabric got far enough to produce one, so a
            // failed cell is diagnosable from the record alone.
            if let Some(text) = &e.partial_report {
                let doc = apir_util::json::parse(text)
                    .expect("partial reports render valid JSON");
                members.push(("report".to_string(), doc));
            }
        }
    }
    Json::Obj(members)
}

/// What a finished campaign looked like. Wall-clock fields measure the
/// host and are *not* part of any deterministic output — they render in
/// the human summary only.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CampaignSummary {
    /// Cells run (every cell always produces exactly one record).
    pub jobs: u64,
    /// Cells that produced an error record.
    pub failed: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Steals performed by idle workers.
    pub steals: usize,
    /// Peak completed-but-unmerged results (≤ the in-flight cap).
    pub peak_inflight: usize,
    /// Host wall time of the whole campaign.
    pub wall_ms: f64,
    /// Throughput: `jobs / wall seconds`.
    pub jobs_per_sec: f64,
}

impl CampaignSummary {
    /// The `campaign.*` metric line, stable keys in a stable order.
    pub fn render(&self) -> String {
        format!(
            "campaign.jobs={} campaign.failed={} campaign.threads={} \
             campaign.steals={} campaign.peak_inflight={} \
             campaign.wall_ms={:.1} campaign.jobs_per_sec={:.1}",
            self.jobs,
            self.failed,
            self.threads,
            self.steals,
            self.peak_inflight,
            self.wall_ms,
            self.jobs_per_sec
        )
    }
}

/// Default cap on completed-but-unmerged results per campaign.
pub const DEFAULT_INFLIGHT: usize = 32;

/// Runs a whole campaign: expand, dispatch on `threads` work-stealing
/// workers, and hand every record to `sink` in merge-key order. The
/// record stream is byte-deterministic across thread counts; only the
/// wall-clock fields of the returned summary vary.
pub fn run_campaign<S>(
    plan: &CampaignPlan,
    threads: usize,
    inflight: usize,
    mut sink: S,
) -> CampaignSummary
where
    S: FnMut(&Json) + Send,
{
    let jobs = expand(plan);
    let t0 = Instant::now();
    let mut failed = 0u64;
    let stats = apir_runtime::dispatch::run_ordered(
        jobs.len(),
        threads,
        inflight.max(1),
        |i| run_job_retrying(&jobs[i]),
        |i, result| {
            // A worker panic is flattened into the same structured error
            // shape as a clean fabric failure. (`run_job_retrying`
            // already catches per-attempt panics; this is the backstop.)
            let outcome = match result {
                Ok(r) => r,
                Err(message) => Err(JobError {
                    kind: "panic",
                    cycle: None,
                    message,
                    partial_report: None,
                }),
            };
            if outcome.is_err() {
                failed += 1;
            }
            sink(&record(&jobs[i], &outcome));
        },
    );
    let wall = t0.elapsed().as_secs_f64();
    CampaignSummary {
        jobs: stats.jobs as u64,
        failed,
        threads: threads.max(1),
        steals: stats.steals,
        peak_inflight: stats.peak_inflight,
        wall_ms: wall * 1e3,
        jobs_per_sec: if wall > 0.0 {
            stats.jobs as f64 / wall
        } else {
            0.0
        },
    }
}

/// Assembles the single-document rendering (`apir.campaign.results.v1`)
/// from already-merged records. Only deterministic summary fields go in
/// — no wall-clock keys — so the document is diffable with
/// `apir-trace diff` and byte-identical across thread counts.
pub fn doc_from(plan: &CampaignPlan, records: Vec<Json>, summary: &CampaignSummary) -> Json {
    Json::obj([
        ("schema", Json::str(RESULTS_SCHEMA)),
        ("scale", Json::str(plan.scale.name())),
        ("jobs", Json::U64(summary.jobs)),
        ("failed", Json::U64(summary.failed)),
        ("results", Json::Arr(records)),
    ])
}

/// Runs a campaign and collects it into the single-document rendering.
pub fn results_doc(plan: &CampaignPlan, threads: usize, inflight: usize) -> (Json, CampaignSummary) {
    let mut records: Vec<Json> = Vec::new();
    let summary = run_campaign(plan, threads, inflight, |r| records.push(r.clone()));
    (doc_from(plan, records, &summary), summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::parse_plan;

    fn tiny_plan(extra_cfg: &str) -> CampaignPlan {
        parse_plan(&format!(
            r#"{{"schema":"apir.campaign.plan.v1","scale":"tiny",
                 "apps":["SPEC-BFS"],"seeds":[2,1],
                 "configs":[{{"id":"base"}}{extra_cfg}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn expansion_is_sorted_by_key_regardless_of_plan_order() {
        let plan = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1",
                "apps":["SPEC-SSSP","SPEC-BFS"],"seeds":[9,1],
                "configs":[{"id":"z"},{"id":"a"}]}"#,
        )
        .unwrap();
        let keys: Vec<String> = expand(&plan).iter().map(Job::key).collect();
        assert_eq!(
            keys,
            [
                "SPEC-BFS/a/1",
                "SPEC-BFS/a/9",
                "SPEC-BFS/z/1",
                "SPEC-BFS/z/9",
                "SPEC-SSSP/a/1",
                "SPEC-SSSP/a/9",
                "SPEC-SSSP/z/1",
                "SPEC-SSSP/z/9",
            ]
        );
    }

    #[test]
    fn ok_cells_verify_and_render_ok_records() {
        let plan = tiny_plan("");
        let mut lines = Vec::new();
        let summary = run_campaign(&plan, 2, 4, |r| lines.push(r.render()));
        assert_eq!(summary.jobs, 2);
        assert_eq!(summary.failed, 0);
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let doc = apir_util::json::parse(line).unwrap();
            assert_eq!(doc.get("status").unwrap().as_str(), Some("ok"));
            let report = doc.get("report").unwrap();
            assert_eq!(
                report.get("schema").and_then(Json::as_str),
                Some("apir.fabric.report.v2")
            );
        }
    }

    #[test]
    fn failing_cell_becomes_a_structured_error_record() {
        // max_cycles=32 is far below any real run: MaxCycles, recorded.
        let plan = tiny_plan(r#",{"id":"boom","max_cycles":32}"#);
        let mut records = Vec::new();
        let summary = run_campaign(&plan, 2, 4, |r| records.push(r.clone()));
        assert_eq!(summary.jobs, 4);
        assert_eq!(summary.failed, 2);
        let boom: Vec<&Json> = records
            .iter()
            .filter(|r| r.get("config").unwrap().as_str() == Some("boom"))
            .collect();
        assert_eq!(boom.len(), 2);
        for r in boom {
            assert_eq!(r.get("status").unwrap().as_str(), Some("error"));
            let e = r.get("error").unwrap();
            assert_eq!(e.get("kind").unwrap().as_str(), Some("max_cycles"));
            assert_eq!(e.get("cycle").unwrap().as_u64(), Some(32));
            assert!(e.get("message").unwrap().as_str().unwrap().contains("max cycles"));
        }
    }

    #[test]
    fn chaos_cells_inject_and_recover() {
        let plan = tiny_plan(r#",{"id":"chaos","chaos":true}"#);
        let jobs = expand(&plan);
        let chaos_job = jobs
            .iter()
            .find(|j| j.config.chaos && j.seed == 1)
            .unwrap();
        let report = run_job(chaos_job).expect("chaos cell recovers");
        assert!(report.faults.soft_injected + report.faults.link_dropped > 0);
        // The same cell reruns byte-identically.
        let again = run_job(chaos_job).unwrap();
        assert_eq!(report.to_json(), again.to_json());
    }

    #[test]
    fn retry_seed_is_identity_at_attempt_zero_and_distinct_after() {
        assert_eq!(retry_seed(42, 0), 42);
        let bumped: Vec<u64> = (1..4).map(|k| retry_seed(42, k)).collect();
        assert!(bumped.iter().all(|&s| s != 42));
        assert_ne!(bumped[0], bumped[1]);
        assert_ne!(bumped[1], bumped[2]);
    }

    #[test]
    fn retries_exhaust_deterministically_on_a_doomed_cell() {
        // max_cycles failures do not depend on the fault salt, so every
        // attempt fails the same way and the final record matches the
        // no-retry record exactly — retries never change a cell's key
        // or its deterministic outcome, only how hard it tries.
        let plan = tiny_plan(r#",{"id":"boom","max_cycles":32,"retries":2}"#);
        let job = expand(&plan)
            .into_iter()
            .find(|j| j.config.id == "boom")
            .unwrap();
        let e1 = run_job_retrying(&job).unwrap_err();
        let e2 = run_job_retrying(&job).unwrap_err();
        assert_eq!(e1, e2);
        assert_eq!(e1.kind, "max_cycles");
        assert_eq!(e1.cycle, Some(32));
    }

    #[test]
    fn panicking_cell_is_caught_and_classified_by_the_retry_loop() {
        // An unknown app makes `build_app` panic on every attempt; the
        // retry loop must absorb each unwind and record `panic`.
        let job = Job {
            app: "NO-SUCH-APP".to_string(),
            config: ConfigVariant {
                id: "x".to_string(),
                retries: 1,
                ..ConfigVariant::default()
            },
            seed: 1,
            scale: apir_bench::Scale::Tiny,
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let e = run_job_retrying(&job).unwrap_err();
        std::panic::set_hook(prev);
        assert_eq!(e.kind, "panic");
        assert!(e.message.contains("NO-SUCH-APP"), "{}", e.message);
    }

    #[test]
    fn error_records_carry_the_stamped_partial_report() {
        let plan = tiny_plan(r#",{"id":"boom","max_cycles":32}"#);
        let job = expand(&plan)
            .into_iter()
            .find(|j| j.config.id == "boom")
            .unwrap();
        let outcome = run_job(&job);
        let r = record(&job, &outcome);
        let report = r.get("report").expect("error record embeds the partial report");
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("apir.fabric.report.v2")
        );
        let t = report.get("terminated").expect("terminated stamp");
        assert_eq!(t.get("kind").unwrap().as_str(), Some("max_cycles"));
        assert_eq!(t.get("cycle").unwrap().as_u64(), Some(32));
    }

    #[test]
    fn summary_renders_stable_campaign_keys() {
        let s = CampaignSummary {
            jobs: 12,
            failed: 3,
            threads: 8,
            steals: 5,
            peak_inflight: 4,
            wall_ms: 123.456,
            jobs_per_sec: 97.2,
        }
        .render();
        assert!(s.contains("campaign.jobs=12"), "{s}");
        assert!(s.contains("campaign.failed=3"), "{s}");
        assert!(s.contains("campaign.wall_ms=123.5"), "{s}");
        assert!(s.contains("campaign.jobs_per_sec=97.2"), "{s}");
    }

    #[test]
    fn results_doc_is_thread_count_invariant() {
        let plan = tiny_plan(r#",{"id":"boom","max_cycles":32}"#);
        let (a, _) = results_doc(&plan, 1, 2);
        let (b, _) = results_doc(&plan, 4, 2);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.get("schema").unwrap().as_str(), Some(RESULTS_SCHEMA));
        assert_eq!(a.get("jobs").unwrap().as_u64(), Some(4));
        assert_eq!(a.get("failed").unwrap().as_u64(), Some(2));
    }
}
