//! # apir-campaign — work-stealing sweep dispatcher
//!
//! Expands a campaign plan (`apir.campaign.plan.v1`: apps × seeds ×
//! config variants, with optional chaos per variant) into jobs, runs
//! them on a work-stealing thread fleet with a bounded in-flight
//! window, and merges the per-cell results deterministically: records
//! stream in `(app, config, seed)` order, so the JSONL output of an
//! 8-thread run is byte-identical to a 1-thread run.
//!
//! - [`plan`] — the plan schema, parser, and validation diagnostics
//!   (including the per-config `retries` policy).
//! - [`engine`] — expansion, per-job execution and failure capture,
//!   deterministic retry salting, the ordered dispatch loop, and the
//!   `campaign.*` summary.
//! - [`resume`] — crash recovery: parse the completed prefix of a
//!   killed run's JSONL (tolerating a torn final line) and re-run only
//!   the missing cells, byte-identical to an uninterrupted run.
//!
//! Driven from the CLI as `apir-trace campaign <plan.json>`
//! (`--resume <partial.jsonl>` to pick up a killed run).

pub mod engine;
pub mod plan;
pub mod resume;

pub use engine::{
    doc_from, expand, record, results_doc, retry_seed, run_campaign, run_job, run_job_attempt,
    run_job_retrying, CampaignSummary, Job, JobError, DEFAULT_INFLIGHT, RESULTS_SCHEMA,
    RETRY_SALT,
};
pub use plan::{parse_plan, CampaignPlan, ConfigVariant, Overrides, PlanError, PLAN_SCHEMA};
pub use resume::{
    parse_partial, run_campaign_resume, PartialLog, PartialRecord, ResumeError, ResumeStats,
};
