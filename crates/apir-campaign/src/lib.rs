//! # apir-campaign — work-stealing sweep dispatcher
//!
//! Expands a campaign plan (`apir.campaign.plan.v1`: apps × seeds ×
//! config variants, with optional chaos per variant) into jobs, runs
//! them on a work-stealing thread fleet with a bounded in-flight
//! window, and merges the per-cell results deterministically: records
//! stream in `(app, config, seed)` order, so the JSONL output of an
//! 8-thread run is byte-identical to a 1-thread run.
//!
//! - [`plan`] — the plan schema, parser, and validation diagnostics.
//! - [`engine`] — expansion, per-job execution and failure capture,
//!   the ordered dispatch loop, and the `campaign.*` summary.
//!
//! Driven from the CLI as `apir-trace campaign <plan.json>`.

pub mod engine;
pub mod plan;

pub use engine::{
    doc_from, expand, record, results_doc, run_campaign, run_job, CampaignSummary, Job,
    JobError, DEFAULT_INFLIGHT, RESULTS_SCHEMA,
};
pub use plan::{parse_plan, CampaignPlan, ConfigVariant, Overrides, PlanError, PLAN_SCHEMA};
