//! Crash-resumable campaigns: pick up a killed run from its partial
//! JSONL record stream.
//!
//! A campaign streams one record per cell in merge-key order, so a
//! crashed run leaves a *prefix* of the full output — possibly ending
//! in a torn line if the process died mid-write. [`parse_partial`]
//! recovers the completed records (tolerating exactly that torn final
//! line), and [`run_campaign_resume`] re-runs only the missing cells,
//! re-emitting the completed lines *verbatim* and interleaving fresh
//! records in merge order. Because every cell is deterministic, the
//! resumed stream is byte-identical to what an uninterrupted run would
//! have produced — at any thread count (pinned in the tests below and
//! gated in `scripts/verify.sh`).

use crate::engine::{expand, record, run_job_retrying, CampaignSummary, JobError};
use crate::plan::CampaignPlan;
use apir_util::json::{parse, Json};
use std::collections::BTreeMap;
use std::time::Instant;

/// Why a partial log could not be resumed. Rendered verbatim in the
/// CLI's exit-2 diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeError {
    /// What is wrong with the partial log.
    pub msg: String,
}

impl ResumeError {
    fn new(msg: impl Into<String>) -> Self {
        ResumeError { msg: msg.into() }
    }
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot resume campaign: {}", self.msg)
    }
}

impl std::error::Error for ResumeError {}

/// One completed record recovered from a partial log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialRecord {
    /// The merge key (`app/config/seed`).
    pub key: String,
    /// Whether the cell completed with `status: "ok"`.
    pub ok: bool,
    /// The record line, byte-for-byte as it was written (no newline).
    pub line: String,
}

/// The completed prefix of a killed campaign's JSONL output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartialLog {
    /// Completed records in file order.
    pub records: Vec<PartialRecord>,
    /// Whether a torn (unparseable) final line was discarded.
    pub torn: bool,
}

/// Parses the completed records out of a partial campaign JSONL.
///
/// Every line must be a complete record object carrying `app`,
/// `config`, `seed`, and `status` — except the *final* line, which a
/// mid-write crash may have torn; an unparseable final line is
/// discarded (and reported via [`PartialLog::torn`]), never an error.
///
/// # Errors
///
/// [`ResumeError`] when a non-final line is malformed or when two
/// lines carry the same merge key — both mean the file is not the
/// prefix of a campaign record stream, and silently "resuming" it
/// would launder corrupt results into a clean-looking output.
pub fn parse_partial(text: &str) -> Result<PartialLog, ResumeError> {
    let lines: Vec<&str> = text.split('\n').filter(|l| !l.trim().is_empty()).collect();
    let mut log = PartialLog::default();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (i, line) in lines.iter().enumerate() {
        let last = i + 1 == lines.len();
        match parse_record_line(line) {
            Ok((key, ok)) => {
                if let Some(prev) = seen.insert(key.clone(), i + 1) {
                    return Err(ResumeError::new(format!(
                        "lines {prev} and {} both carry the record for `{key}`",
                        i + 1
                    )));
                }
                log.records.push(PartialRecord {
                    key,
                    ok,
                    line: (*line).to_string(),
                });
            }
            Err(why) => {
                if last {
                    // The torn tail of the interrupted write: the cell
                    // never completed, so it simply re-runs.
                    log.torn = true;
                } else {
                    return Err(ResumeError::new(format!(
                        "line {} is not a campaign record ({why}) and is not the final \
                         (possibly torn) line",
                        i + 1
                    )));
                }
            }
        }
    }
    Ok(log)
}

/// Extracts `(merge key, status == ok)` from one record line.
fn parse_record_line(line: &str) -> Result<(String, bool), String> {
    let doc = parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    let app = doc
        .get("app")
        .and_then(Json::as_str)
        .ok_or("missing `app`")?;
    let config = doc
        .get("config")
        .and_then(Json::as_str)
        .ok_or("missing `config`")?;
    let seed = doc
        .get("seed")
        .and_then(Json::as_u64)
        .ok_or("missing `seed`")?;
    let status = doc
        .get("status")
        .and_then(Json::as_str)
        .ok_or("missing `status`")?;
    match status {
        "ok" | "error" => Ok((format!("{app}/{config}/{seed}"), status == "ok")),
        other => Err(format!("unknown status `{other}`")),
    }
}

/// What a resume reused versus re-ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Completed records re-emitted verbatim from the partial log.
    pub reused: u64,
    /// Cells actually (re-)run.
    pub ran: u64,
    /// Whether the partial log ended in a discarded torn line.
    pub torn: bool,
}

/// Resumes a campaign from a partial log: every completed record is
/// re-emitted byte-for-byte, every missing cell runs (on `threads`
/// work-stealing workers, under its config's retry policy), and `sink`
/// receives each record line — without its newline — in merge-key
/// order. The full stream is byte-identical to an uninterrupted run.
///
/// # Errors
///
/// [`ResumeError`] when a record in the log is not a cell of `plan` —
/// resuming under the wrong plan would silently mix two campaigns.
pub fn run_campaign_resume<S>(
    plan: &CampaignPlan,
    threads: usize,
    inflight: usize,
    partial: &PartialLog,
    mut sink: S,
) -> Result<(CampaignSummary, ResumeStats), ResumeError>
where
    S: FnMut(&str) + Send,
{
    let jobs = expand(plan);
    let key_index: BTreeMap<String, usize> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.key(), i))
        .collect();
    let mut cached: Vec<Option<&str>> = vec![None; jobs.len()];
    let mut failed = 0u64;
    for r in &partial.records {
        let Some(&i) = key_index.get(&r.key) else {
            return Err(ResumeError::new(format!(
                "record `{}` is not a cell of this plan",
                r.key
            )));
        };
        failed += u64::from(!r.ok);
        cached[i] = Some(r.line.as_str());
    }
    let missing: Vec<usize> = (0..jobs.len()).filter(|&i| cached[i].is_none()).collect();
    let stats = ResumeStats {
        reused: partial.records.len() as u64,
        ran: missing.len() as u64,
        torn: partial.torn,
    };

    let t0 = Instant::now();
    let mut next_flush = 0usize;
    let dispatch = apir_runtime::dispatch::run_ordered(
        missing.len(),
        threads,
        inflight.max(1),
        |k| run_job_retrying(&jobs[missing[k]]),
        |k, result| {
            let gi = missing[k];
            // Everything between two fresh cells is cached: flush it
            // first so the stream stays in merge-key order.
            while next_flush < gi {
                sink(cached[next_flush].expect("gaps between fresh cells are cached"));
                next_flush += 1;
            }
            let outcome = match result {
                Ok(r) => r,
                Err(message) => Err(JobError {
                    kind: "panic",
                    cycle: None,
                    message,
                    partial_report: None,
                }),
            };
            if outcome.is_err() {
                failed += 1;
            }
            sink(&record(&jobs[gi], &outcome).render());
            next_flush = gi + 1;
        },
    );
    while next_flush < jobs.len() {
        sink(cached[next_flush].expect("every unflushed tail cell is cached"));
        next_flush += 1;
    }

    let wall = t0.elapsed().as_secs_f64();
    let summary = CampaignSummary {
        jobs: jobs.len() as u64,
        failed,
        threads: threads.max(1),
        steals: dispatch.steals,
        peak_inflight: dispatch.peak_inflight,
        wall_ms: wall * 1e3,
        jobs_per_sec: if wall > 0.0 {
            dispatch.jobs as f64 / wall
        } else {
            0.0
        },
    };
    Ok((summary, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_campaign;
    use crate::plan::parse_plan;

    fn plan() -> CampaignPlan {
        parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","scale":"tiny",
                "apps":["SPEC-BFS","SPEC-SSSP"],"seeds":[1,2],
                "configs":[{"id":"base"},{"id":"boom","max_cycles":32}]}"#,
        )
        .unwrap()
    }

    fn full_lines(plan: &CampaignPlan) -> Vec<String> {
        let mut lines = Vec::new();
        run_campaign(plan, 1, 4, |r| lines.push(r.render()));
        lines
    }

    fn resumed_lines(
        plan: &CampaignPlan,
        threads: usize,
        partial: &PartialLog,
    ) -> (Vec<String>, CampaignSummary, ResumeStats) {
        let mut lines = Vec::new();
        let (summary, stats) =
            run_campaign_resume(plan, threads, 4, partial, |l| lines.push(l.to_string()))
                .unwrap();
        (lines, summary, stats)
    }

    #[test]
    fn torn_final_line_is_discarded_and_rerun() {
        let plan = plan();
        let full = full_lines(&plan);
        // Keep three complete records plus half of the fourth — the
        // classic shape of a stream killed mid-write.
        let mut text = full[..3].join("\n");
        text.push('\n');
        text.push_str(&full[3][..full[3].len() / 2]);
        let partial = parse_partial(&text).unwrap();
        assert!(partial.torn);
        assert_eq!(partial.records.len(), 3);
        for threads in [1, 4] {
            let (lines, summary, stats) = resumed_lines(&plan, threads, &partial);
            assert_eq!(lines, full, "threads={threads}");
            assert_eq!(stats.reused, 3);
            assert_eq!(stats.ran, 5);
            assert_eq!(summary.jobs, 8);
            assert_eq!(summary.failed, 4, "both boom configs fail per app/seed");
        }
    }

    #[test]
    fn empty_partial_log_reruns_everything() {
        let plan = plan();
        let partial = parse_partial("").unwrap();
        assert!(!partial.torn);
        let (lines, _, stats) = resumed_lines(&plan, 2, &partial);
        assert_eq!(lines, full_lines(&plan));
        assert_eq!((stats.reused, stats.ran), (0, 8));
    }

    #[test]
    fn complete_log_reuses_everything_verbatim() {
        let plan = plan();
        let full = full_lines(&plan);
        let mut text = full.join("\n");
        text.push('\n');
        let partial = parse_partial(&text).unwrap();
        let (lines, summary, stats) = resumed_lines(&plan, 1, &partial);
        assert_eq!(lines, full);
        assert_eq!((stats.reused, stats.ran), (8, 0));
        assert_eq!(summary.failed, 4, "reused error records still count");
    }

    #[test]
    fn malformed_interior_line_is_an_error_not_a_torn_tail() {
        let plan = plan();
        let full = full_lines(&plan);
        let text = format!("{}\n{{half a rec\n{}\n", full[0], full[2]);
        let e = parse_partial(&text).unwrap_err();
        assert!(e.msg.contains("line 2"), "{e}");
    }

    #[test]
    fn duplicate_and_foreign_keys_are_rejected() {
        let plan = plan();
        let full = full_lines(&plan);
        let text = format!("{}\n{}\n", full[0], full[0]);
        let e = parse_partial(&text).unwrap_err();
        assert!(e.msg.contains("both carry"), "{e}");

        let other = parse_plan(
            r#"{"schema":"apir.campaign.plan.v1","apps":["COOR-LU"],
                "seeds":[9],"configs":[{"id":"base"}]}"#,
        )
        .unwrap();
        let partial = parse_partial(&format!("{}\n", full[0])).unwrap();
        let e = run_campaign_resume(&other, 1, 4, &partial, |_| {}).unwrap_err();
        assert!(e.msg.contains("not a cell of this plan"), "{e}");
    }
}
