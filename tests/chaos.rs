//! The headline chaos suite: every builtin benchmark, run under the
//! seeded chaos fault-injection preset, must
//!
//! 1. actually suffer a nonzero fault mix (soft errors on fills,
//!    dropped/late QPI responses, masked rule lanes / queue banks —
//!    whichever of those the app's structure exposes),
//! 2. recover to a final memory image equivalent to the fault-free
//!    sequential interpreter run (same equality tiers as
//!    `cross_engine.rs`: exact, union-find partition for SPEC-MST,
//!    checker-only for SPEC-DMR), and
//! 3. be byte-identical across reruns — the fault schedule is part of
//!    the deterministic simulation, not noise on top of it.
//!
//! Seeds are pinned (three campaigns per app) and were chosen by probing
//! (`probe_fault_mix` below, `--ignored`): each pinned seed provably
//! injects every fault class its app can express.

use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::{build_app, APP_NAMES};
use apir::bench::Scale;
use apir::core::interp::SeqInterp;
use apir::core::MemAccess;
use apir::fabric::{Fabric, FabricConfig, FabricReport, FaultConfig};

/// The synthesized + tuned configuration with chaos faults armed.
fn chaos_cfg(name: &str, app: &apir::apps::AppInstance, seed: u64) -> FabricConfig {
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    cfg.faults = FaultConfig::chaos(seed);
    cfg
}

/// Union-find partition equivalence: same connectivity, any tree shape.
fn same_partition(a: &apir::core::MemImage, b: &apir::core::MemImage, n: u64) {
    let parent = apir::core::spec::RegionId(0);
    let find = |mem: &apir::core::MemImage, mut x: u64| {
        while mem.read(parent, x) != x {
            x = mem.read(parent, x);
        }
        x
    };
    for i in 0..n {
        for j in (i + 1)..n {
            assert_eq!(
                find(a, i) == find(a, j),
                find(b, i) == find(b, j),
                "partition mismatch at ({i},{j})"
            );
        }
    }
}

/// Pinned chaos campaigns: three seeds per app (probed; see module doc).
const CAMPAIGNS: [(&str, [u64; 3]); 6] = [
    ("SPEC-BFS", [1, 2, 3]),
    ("COOR-BFS", [1, 2, 3]),
    ("SPEC-SSSP", [1, 2, 3]),
    // Seed 3 injects no soft errors into MST's tiny QPI footprint —
    // probed and replaced with seed 4.
    ("SPEC-MST", [1, 2, 4]),
    ("SPEC-DMR", [1, 2, 3]),
    ("COOR-LU", [1, 2, 3]),
];

fn run_chaos(name: &str, app: &apir::apps::AppInstance, cfg: FabricConfig) -> FabricReport {
    Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{name}: chaos run failed: {e}"))
}

#[test]
fn chaos_campaigns_recover_to_fault_free_memory() {
    for (name, seeds) in CAMPAIGNS {
        let app = build_app(name, Scale::Tiny);
        let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
        (app.check)(&seq.mem).unwrap_or_else(|e| panic!("{name} interp: {e}"));
        for seed in seeds {
            let cfg = chaos_cfg(name, &app, seed);
            let report = run_chaos(name, &app, cfg.clone());

            // (1) The campaign provably injected faults. Memory-side
            // faults hit every app that touches the cache/QPI path;
            // structural (lane/bank) faults hit whatever the app's config
            // leaves maskable: COOR-LU has no rule engines (banks only),
            // and SPEC-MST's tuned 2-bank queue is reserve-protected by
            // design — masking it could deadlock recirculation, so the
            // plan refuses and only its rule lanes are masked.
            let f = &report.faults;
            assert!(f.soft_injected > 0, "{name} seed {seed}: no soft errors");
            assert!(
                f.link_dropped + f.link_late > 0,
                "{name} seed {seed}: no link faults"
            );
            assert!(
                f.lanes_masked + f.banks_masked > 0,
                "{name} seed {seed}: no structural faults"
            );
            assert!(
                f.soft_corrected + f.soft_refetched == f.soft_injected,
                "{name} seed {seed}: soft errors must be corrected or refetched"
            );

            // (2) Recovery: the faulty run's final image is equivalent to
            // the fault-free interpreter run.
            (app.check)(&report.mem_image)
                .unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            match name {
                "SPEC-MST" => {
                    let n = app.input.mem.capacity(apir::core::spec::RegionId(0));
                    same_partition(&seq.mem, &report.mem_image, n as u64);
                }
                "SPEC-DMR" => {} // checker-only (commit-order-dependent mesh)
                _ => {
                    assert_eq!(
                        seq.mem,
                        report.mem_image,
                        "{name} seed {seed}: final images differ: {:?}",
                        seq.mem.diff(&report.mem_image, 8)
                    );
                }
            }

            // (3) Determinism: the same seed reproduces the run byte for
            // byte, fault schedule included.
            let again = run_chaos(name, &app, cfg);
            assert_eq!(
                report.to_json(),
                again.to_json(),
                "{name} seed {seed}: chaos rerun diverged"
            );
        }
    }
}

#[test]
fn chaos_report_exposes_fault_metrics_and_json() {
    // The fault mix is observable through all three surfaces: the typed
    // stats on the report, the `fault.*` metric keys, and the JSON
    // document (`apir.fabric.report.v1`).
    let name = "SPEC-BFS";
    let app = build_app(name, Scale::Tiny);
    let report = run_chaos(name, &app, chaos_cfg(name, &app, 1));
    let f = &report.faults;

    let counter = |key: &str| -> u64 {
        match report.metrics.get(key) {
            Some(apir::sim::metrics::MetricValue::Counter(v)) => *v,
            other => panic!("metric {key}: {other:?}"),
        }
    };
    assert_eq!(counter("fault.mem.soft_injected"), f.soft_injected);
    assert_eq!(counter("fault.link.dropped"), f.link_dropped);
    assert_eq!(counter("fault.link.retried"), f.link_retried);
    assert_eq!(counter("fault.lane.masked"), f.lanes_masked);
    assert_eq!(counter("fault.bank.masked"), f.banks_masked);

    let doc = apir_util::json::parse(&report.to_json()).expect("valid JSON");
    let faults = doc.get("faults").expect("faults object");
    assert_eq!(
        faults.get("soft_injected").unwrap().as_u64(),
        Some(f.soft_injected)
    );
    assert_eq!(
        faults.get("link_dropped").unwrap().as_u64(),
        Some(f.link_dropped)
    );
}

#[test]
fn faults_off_is_the_identity() {
    // A default (faults-off) config must produce the exact same report as
    // before the chaos layer existed modulo the always-zero fault block:
    // the fault path must be invisible when disarmed. Guarded by the
    // report goldens and the bench baseline too; this pins the stats.
    let app = build_app("SPEC-BFS", Scale::Tiny);
    let mut cfg = synthesized_cfg("SPEC-BFS", Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    assert!(!cfg.faults.is_enabled());
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .expect("fault-free run");
    assert_eq!(report.faults, apir::fabric::FaultStats::default());
}

/// Probe harness used to pin the campaign seeds: prints the fault mix per
/// app per candidate seed. Run with
/// `cargo test --test chaos probe_fault_mix -- --ignored --nocapture`.
#[test]
#[ignore]
fn probe_fault_mix() {
    for name in APP_NAMES {
        let app = build_app(name, Scale::Tiny);
        for seed in 1..=6u64 {
            let report = run_chaos(name, &app, chaos_cfg(name, &app, seed));
            let f = &report.faults;
            println!(
                "{name:<10} seed {seed}: cycles={} soft={}/{}c/{}r link={}d/{}l/{}r lanes={} banks={} wd={}/{}",
                report.cycles,
                f.soft_injected,
                f.soft_corrected,
                f.soft_refetched,
                f.link_dropped,
                f.link_late,
                f.link_retried,
                f.lanes_masked,
                f.banks_masked,
                f.watchdog_escalations,
                f.watchdog_flushed,
            );
        }
    }
}
