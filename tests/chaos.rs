//! The headline chaos suite, driven by the committed campaign plan
//! `tests/plans/chaos_matrix.json`: every builtin benchmark × every
//! plan seed × every chaos config variant (the event-wheel baseline
//! and the dense-tick scheduler) must
//!
//! 1. recover to a final memory image equivalent to the fault-free
//!    sequential interpreter run (same equality tiers as
//!    `cross_engine.rs`: exact, union-find partition for SPEC-MST,
//!    checker-only for SPEC-DMR), and
//! 2. provably suffer faults: aggregated across the plan's seeds, each
//!    (app, config) pair injects soft errors, link faults, and the
//!    structural (lane/bank) faults its shape exposes. Aggregation is
//!    what lets the plan use arbitrary seed ranges — a single seed may
//!    legitimately miss a fault class on a tiny footprint (MST's QPI
//!    traffic is sparse enough that some seeds inject no soft errors),
//!    but five seeds together never do.
//!
//! Determinism of each cell (same seed ⇒ byte-identical report) is held
//! by `campaign_determinism.rs` and the engine's own tests; this suite
//! holds recovery.

use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::{build_app, APP_NAMES};
use apir::bench::Scale;
use apir::campaign::{expand, parse_plan, run_job};
use apir::core::interp::SeqInterp;
use apir::core::MemAccess;
use apir::fabric::{Fabric, FabricConfig, FabricReport, FaultConfig};
use std::collections::HashMap;

/// The synthesized + tuned configuration with chaos faults armed.
fn chaos_cfg(name: &str, app: &apir::apps::AppInstance, seed: u64) -> FabricConfig {
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    cfg.faults = FaultConfig::chaos(seed);
    cfg
}

/// Union-find partition equivalence: same connectivity, any tree shape.
fn same_partition(a: &apir::core::MemImage, b: &apir::core::MemImage, n: u64) {
    let parent = apir::core::spec::RegionId(0);
    let find = |mem: &apir::core::MemImage, mut x: u64| {
        while mem.read(parent, x) != x {
            x = mem.read(parent, x);
        }
        x
    };
    for i in 0..n {
        for j in (i + 1)..n {
            assert_eq!(
                find(a, i) == find(a, j),
                find(b, i) == find(b, j),
                "partition mismatch at ({i},{j})"
            );
        }
    }
}

fn run_chaos(name: &str, app: &apir::apps::AppInstance, cfg: FabricConfig) -> FabricReport {
    Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{name}: chaos run failed: {e}"))
}

#[test]
fn chaos_matrix_recovers_to_fault_free_memory() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/plans/chaos_matrix.json"
    ))
    .expect("committed chaos plan");
    let plan = parse_plan(&text).expect("valid chaos plan");
    // The committed plan is the full matrix: every builtin, at least
    // five seeds, two all-chaos configs.
    assert_eq!(plan.apps.len(), APP_NAMES.len(), "plan must cover every builtin");
    assert!(plan.seeds.len() >= 5, "plan must sweep at least five seeds");
    assert_eq!(plan.configs.len(), 2);
    assert!(plan.configs.iter().all(|c| c.chaos), "every cell is a chaos cell");

    // Fault-free reference image per app, computed once.
    let mut reference = HashMap::new();
    for name in &plan.apps {
        let app = build_app(name, plan.scale);
        let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
        (app.check)(&seq.mem).unwrap_or_else(|e| panic!("{name} interp: {e}"));
        reference.insert(name.clone(), (app, seq));
    }

    #[derive(Default)]
    struct Mix {
        soft: u64,
        link: u64,
        structural: u64,
    }
    let mut mix: HashMap<(String, String), Mix> = HashMap::new();

    for job in expand(&plan) {
        let key = job.key();
        // `run_job` already re-verifies the cell against the app checker.
        let report =
            run_job(&job).unwrap_or_else(|e| panic!("{key}: [{}] {}", e.kind, e.message));

        let f = &report.faults;
        assert_eq!(
            f.soft_corrected + f.soft_refetched,
            f.soft_injected,
            "{key}: soft errors must be corrected or refetched"
        );
        let m = mix
            .entry((job.app.clone(), job.config.id.clone()))
            .or_default();
        m.soft += f.soft_injected;
        m.link += f.link_dropped + f.link_late;
        m.structural += f.lanes_masked + f.banks_masked;

        // Recovery: the faulty run's final image is equivalent to the
        // fault-free interpreter run.
        let (app, seq) = &reference[&job.app];
        match job.app.as_str() {
            "SPEC-MST" => {
                let n = app.input.mem.capacity(apir::core::spec::RegionId(0));
                same_partition(&seq.mem, &report.mem_image, n as u64);
            }
            "SPEC-DMR" => {} // checker-only (commit-order-dependent mesh)
            _ => {
                assert_eq!(
                    seq.mem,
                    report.mem_image,
                    "{key}: final images differ: {:?}",
                    seq.mem.diff(&report.mem_image, 8)
                );
            }
        }
    }

    // Aggregated over the plan's seeds, every (app, config) pair
    // suffered every fault family. Memory-side faults hit every app
    // that touches the cache/QPI path; structural (lane/bank) faults
    // hit whatever the app's config leaves maskable: COOR-LU has no
    // rule engines (banks only), and SPEC-MST's tuned 2-bank queue is
    // reserve-protected by design — masking it could deadlock
    // recirculation, so the plan refuses and only its rule lanes are
    // masked.
    assert_eq!(mix.len(), plan.apps.len() * plan.configs.len());
    for ((app, config), m) in &mix {
        assert!(m.soft > 0, "{app}/{config}: no soft errors across seeds");
        assert!(m.link > 0, "{app}/{config}: no link faults across seeds");
        assert!(
            m.structural > 0,
            "{app}/{config}: no structural faults across seeds"
        );
    }
}

#[test]
fn chaos_report_exposes_fault_metrics_and_json() {
    // The fault mix is observable through all three surfaces: the typed
    // stats on the report, the `fault.*` metric keys, and the JSON
    // document (`apir.fabric.report.v1`).
    let name = "SPEC-BFS";
    let app = build_app(name, Scale::Tiny);
    let report = run_chaos(name, &app, chaos_cfg(name, &app, 1));
    let f = &report.faults;

    let counter = |key: &str| -> u64 {
        match report.metrics.get(key) {
            Some(apir::sim::metrics::MetricValue::Counter(v)) => *v,
            other => panic!("metric {key}: {other:?}"),
        }
    };
    assert_eq!(counter("fault.mem.soft_injected"), f.soft_injected);
    assert_eq!(counter("fault.link.dropped"), f.link_dropped);
    assert_eq!(counter("fault.link.retried"), f.link_retried);
    assert_eq!(counter("fault.lane.masked"), f.lanes_masked);
    assert_eq!(counter("fault.bank.masked"), f.banks_masked);

    let doc = apir_util::json::parse(&report.to_json()).expect("valid JSON");
    let faults = doc.get("faults").expect("faults object");
    assert_eq!(
        faults.get("soft_injected").unwrap().as_u64(),
        Some(f.soft_injected)
    );
    assert_eq!(
        faults.get("link_dropped").unwrap().as_u64(),
        Some(f.link_dropped)
    );
}

#[test]
fn faults_off_is_the_identity() {
    // A default (faults-off) config must produce the exact same report as
    // before the chaos layer existed modulo the always-zero fault block:
    // the fault path must be invisible when disarmed. Guarded by the
    // report goldens and the bench baseline too; this pins the stats.
    let app = build_app("SPEC-BFS", Scale::Tiny);
    let mut cfg = synthesized_cfg("SPEC-BFS", Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    assert!(!cfg.faults.is_enabled());
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .expect("fault-free run");
    assert_eq!(report.faults, apir::fabric::FaultStats::default());
}

/// Probe harness used to vet campaign-plan seeds: prints the fault mix
/// per app per candidate seed. Run with
/// `cargo test --test chaos probe_fault_mix -- --ignored --nocapture`.
#[test]
#[ignore]
fn probe_fault_mix() {
    for name in APP_NAMES {
        let app = build_app(name, Scale::Tiny);
        for seed in 1..=6u64 {
            let report = run_chaos(name, &app, chaos_cfg(name, &app, seed));
            let f = &report.faults;
            println!(
                "{name:<10} seed {seed}: cycles={} soft={}/{}c/{}r link={}d/{}l/{}r lanes={} banks={} wd={}/{}",
                report.cycles,
                f.soft_injected,
                f.soft_corrected,
                f.soft_refetched,
                f.link_dropped,
                f.link_late,
                f.link_retried,
                f.lanes_masked,
                f.banks_masked,
                f.watchdog_escalations,
                f.watchdog_flushed,
            );
        }
    }
}
