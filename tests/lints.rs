//! Negative-path tests of the static analyzer: deliberately broken specs
//! and graphs must produce their exact stable `APIRxxx` diagnostics, and
//! seeded single-mutation corruptions of a healthy spec must never pass
//! the analyzer silently.

use apir::check::{check_all, check_bdfg_structure, check_spec, Lint, Severity};
use apir::core::bdfg::{Actor, ActorKind, Bdfg, Edge, EdgeKind};
use apir::core::expr::dsl::{c, eq, ev, param};
use apir::core::mem::MemAccess;
use apir::core::rule::{RuleAction, RuleDecl};
use apir::core::spec::{ExternIn, ExternOut, Spec, SpecError, TaskSetKind};
use apir::core::TaskSetId;
use apir_util::props;
use std::sync::Arc;

fn has_at_least(report: &apir::check::Report, lint: Lint, floor: Severity) -> bool {
    report
        .diagnostics()
        .iter()
        .any(|d| d.lint == lint && d.severity >= floor)
}

// ---- liveness family (APIR0xx) ----

#[test]
fn waiting_rule_without_otherwise_is_apir001() {
    let mut s = Spec::new("dead-wait");
    let rule = s.rule(RuleDecl::new_waiting("w", 0, false));
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    let h = b.alloc_rule(rule, &[]);
    b.rendezvous(h);
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::WaitingRuleNeverTrue, Severity::Error));
    assert_eq!(Lint::WaitingRuleNeverTrue.code(), "APIR001");
    // The build shim surfaces it as the code-carrying SpecError variant.
    match s.build() {
        Err(SpecError::Lint { code, .. }) => assert_eq!(code, "APIR001"),
        other => panic!("expected APIR001 lint error, got {other:?}"),
    }
}

#[test]
fn countdown_out_of_range_is_apir003() {
    let mut s = Spec::new("bad-countdown");
    let rule = s.rule(RuleDecl::new("w", 1, true).with_countdown(5));
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    let x = b.field(0);
    let h = b.alloc_rule(rule, &[x]);
    b.rendezvous(h);
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::CountdownOutOfRange, Severity::Error));
    // Legacy mapping is preserved.
    assert!(matches!(s.build(), Err(SpecError::BadCountdownParam { .. })));
}

#[test]
fn unguarded_requeue_is_apir002_warning() {
    let mut s = Spec::new("spinner");
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    let x = b.field(0);
    b.requeue(&[x], None);
    b.finish();
    let report = check_all(&s);
    assert!(has_at_least(&report, Lint::UnguardedRequeue, Severity::Warn));
    // The recirculation loop also shows up in the BDFG as a cycle with no
    // decision actor.
    assert!(report.has(Lint::UndecidedCycle));
    // Warnings do not fail the build.
    assert!(s.build().is_ok());
}

// ---- BDFG family (APIR2xx) ----

#[test]
fn dangling_bdfg_edge_is_apir201() {
    let actors = vec![Actor {
        id: 0,
        kind: ActorKind::MemoryPort,
        label: "memory".to_string(),
    }];
    let edges = vec![Edge {
        from: 0,
        to: 7, // no such actor
        kind: EdgeKind::Data,
    }];
    let g = Bdfg::from_parts(actors, edges, 0);
    let report = check_bdfg_structure(&g);
    assert!(has_at_least(&report, Lint::DanglingEdge, Severity::Error));
    assert_eq!(Lint::DanglingEdge.code(), "APIR201");
    // The stringly-typed shim keeps its historical message shape.
    let err = g.validate().unwrap_err();
    assert!(err.contains("dangling edge"), "{err}");
}

#[test]
fn unfed_queue_pop_is_apir203() {
    let actors = vec![Actor {
        id: 0,
        kind: ActorKind::QueuePop(TaskSetId(0)),
        label: "pop:t".to_string(),
    }];
    let g = Bdfg::from_parts(actors, Vec::new(), 1);
    let report = check_bdfg_structure(&g);
    assert!(has_at_least(&report, Lint::UnfedQueuePop, Severity::Error));
    let err = g.validate().unwrap_err();
    assert!(err.contains("has no push feeding it"), "{err}");
}

#[test]
fn unclaimed_rule_lane_is_apir206() {
    let mut s = Spec::new("leaky");
    let rule = s.rule(RuleDecl::new("r", 0, true));
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    b.alloc_rule(rule, &[]);
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::UnbalancedRuleTokens, Severity::Error));
}

#[test]
fn switch_steer_guard_mismatch_is_apir207() {
    let mut s = Spec::new("skewed");
    let rule = s.rule(RuleDecl::new("r", 0, true));
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    let x = b.field(0);
    let h = b.alloc_rule_if(rule, &[], x);
    b.rendezvous(h); // missing the guard the alloc carries
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::GuardMismatch, Severity::Error));
}

// ---- interface family (APIR3xx) ----

#[test]
fn arity_mismatched_enqueue_is_apir301() {
    let mut s = Spec::new("fat-enqueue");
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    let x = b.field(0);
    b.enqueue(ts, &[x, x], None); // set carries one field
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::EnqueueArityMismatch, Severity::Error));
    assert_eq!(Lint::EnqueueArityMismatch.code(), "APIR301");
    // Legacy mapping is preserved.
    assert!(matches!(s.build(), Err(SpecError::ArityMismatch { .. })));
}

#[test]
fn event_field_beyond_payload_is_apir304() {
    let mut s = Spec::new("short-event");
    let l = s.label("commit");
    let rule = s.rule(RuleDecl::new("r", 1, true).on_label(
        l,
        eq(ev(3), param(0)), // emitters only provide one payload word
        RuleAction::Return(false),
    ));
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    let x = b.field(0);
    b.emit(l, &[x], None);
    let h = b.alloc_rule(rule, &[x]);
    b.rendezvous(h);
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::EventFieldOutOfRange, Severity::Warn));
}

#[test]
fn unused_extern_is_apir305() {
    let mut s = Spec::new("idle-core");
    s.extern_core(
        "idle",
        Arc::new(|_: &mut dyn MemAccess, _: &ExternIn<'_>| ExternOut::default()),
    );
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    b.field(0);
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::UnusedExtern, Severity::Warn));
}

// ---- hazard family (APIR4xx) ----

#[test]
fn unguarded_cross_task_store_store_is_apir401() {
    let mut s = Spec::new("racer");
    let r = s.region("shared", 64);
    let a = s.task_set("writer_a", TaskSetKind::ForAll, 1, &["i"]);
    let bset = s.task_set("writer_b", TaskSetKind::ForAll, 1, &["i"]);
    for ts in [a, bset] {
        let mut b = s.body(ts);
        let i = b.field(0);
        let one = b.konst(1);
        b.store_plain(r, i, one);
        b.finish();
    }
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::StoreStoreRace, Severity::Error));
    assert_eq!(Lint::StoreStoreRace.code(), "APIR401");
    match s.build() {
        Err(SpecError::Lint { code, .. }) => assert_eq!(code, "APIR401"),
        other => panic!("expected APIR401 lint error, got {other:?}"),
    }
}

#[test]
fn rendezvous_guarded_store_pair_is_not_a_race() {
    // Same shape as the racer above, but one side commits only under a
    // rule verdict: the rule engine is the arbiter, so no APIR401.
    let mut s = Spec::new("arbitrated");
    let r = s.region("shared", 64);
    let rule = s.rule(RuleDecl::new("conflict", 1, true));
    let a = s.task_set("writer_a", TaskSetKind::ForAll, 1, &["i"]);
    let bset = s.task_set("writer_b", TaskSetKind::ForAll, 1, &["i"]);
    {
        let mut b = s.body(a);
        let i = b.field(0);
        let one = b.konst(1);
        let h = b.alloc_rule(rule, &[i]);
        let rv = b.rendezvous(h);
        b.store(r, i, one, apir::core::op::StoreKind::Plain, Some(rv));
        b.finish();
    }
    {
        let mut b = s.body(bset);
        let i = b.field(0);
        let one = b.konst(1);
        let h = b.alloc_rule(rule, &[i]);
        let rv = b.rendezvous(h);
        b.store(r, i, one, apir::core::op::StoreKind::Plain, Some(rv));
        b.finish();
    }
    let report = check_spec(&s);
    assert!(!report.has(Lint::StoreStoreRace), "{}", report.render_text());
    assert!(s.build().is_ok());
}

#[test]
fn const_disjoint_plain_stores_are_not_a_race() {
    let mut s = Spec::new("disjoint");
    let r = s.region("shared", 64);
    let ts = s.task_set("t", TaskSetKind::ForAll, 1, &["v"]);
    let mut b = s.body(ts);
    let v = b.field(0);
    let zero = b.konst(0);
    let one = b.konst(1);
    b.store_plain(r, zero, v);
    b.store_plain(r, one, v);
    b.finish();
    let report = check_spec(&s);
    assert!(!report.has(Lint::StoreStoreRace), "{}", report.render_text());
}

#[test]
fn load_against_plain_store_is_apir402() {
    let mut s = Spec::new("read-write");
    let r = s.region("shared", 64);
    let ts = s.task_set("t", TaskSetKind::ForAll, 1, &["i"]);
    let mut b = s.body(ts);
    let i = b.field(0);
    let v = b.load(r, i);
    b.store_plain(r, i, v);
    b.finish();
    let report = check_spec(&s);
    assert!(has_at_least(&report, Lint::LoadStoreRace, Severity::Warn));
    // A warning, not an error: the spec still builds (racy-by-design
    // specs are legal, the paper's runtime semantics allow them).
    assert!(s.build().is_ok());
}

// ---- fabric-config family (APIR5xx) ----

#[test]
fn zero_fabric_resource_is_apir501() {
    use apir::fabric::FabricConfig;
    let cfg = FabricConfig {
        pipelines_per_set: 0,
        ..FabricConfig::default()
    };
    let report = cfg.validate();
    assert!(has_at_least(&report, Lint::ZeroFabricResource, Severity::Error));
    assert_eq!(Lint::ZeroFabricResource.code(), "APIR501");
    // The fabric refuses to run under a degenerate config.
    let mut s = apir::core::Spec::new("tiny");
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
    let mut b = s.body(ts);
    b.field(0);
    b.finish();
    let s = s.build().unwrap();
    let input = apir::core::ProgramInput::new(&s);
    let cfg = FabricConfig {
        pipelines_per_set: 0,
        ..FabricConfig::default()
    };
    let err = apir::fabric::Fabric::new(&s, &input, cfg).run().unwrap_err();
    match err {
        apir::fabric::FabricError::RejectedByLint { report } => {
            assert!(report.contains("APIR501"), "{report}");
        }
        other => panic!("expected lint rejection, got {other}"),
    }
}

#[test]
fn misordered_watchdog_is_apir502() {
    use apir::fabric::FabricConfig;
    let cfg = FabricConfig {
        rendezvous_timeout: 200_000,
        deadlock_cycles: 100_000,
        ..FabricConfig::default()
    };
    let report = cfg.validate();
    assert!(has_at_least(&report, Lint::WatchdogMisordered, Severity::Error));
    assert_eq!(Lint::WatchdogMisordered.code(), "APIR502");
}

#[test]
fn fault_rate_out_of_range_is_apir503() {
    use apir::fabric::{FabricConfig, FaultConfig};
    let mut cfg = FabricConfig::default();
    cfg.faults = FaultConfig {
        drop_rate: 1.5,
        ..FaultConfig::default()
    };
    let report = cfg.validate();
    assert!(has_at_least(&report, Lint::FaultRateOutOfRange, Severity::Error));
    assert_eq!(Lint::FaultRateOutOfRange.code(), "APIR503");
    // NaN is out of range too, not silently accepted.
    cfg.faults.drop_rate = f64::NAN;
    assert!(has_at_least(
        &cfg.validate(),
        Lint::FaultRateOutOfRange,
        Severity::Error
    ));
}

#[test]
fn degenerate_fault_plan_is_apir504() {
    use apir::fabric::{FabricConfig, FaultConfig};
    let mut cfg = FabricConfig::default();
    cfg.faults = FaultConfig {
        lane_fault_rate: 0.5,
        fault_window: 0,
        ..FaultConfig::default()
    };
    let report = cfg.validate();
    assert!(has_at_least(&report, Lint::DegenerateFaultPlan, Severity::Error));
    assert_eq!(Lint::DegenerateFaultPlan.code(), "APIR504");
    // A drop plan whose retry clock never ticks is equally degenerate.
    cfg.faults = FaultConfig {
        drop_rate: 0.1,
        retry_timeout: 0,
        ..FaultConfig::default()
    };
    assert!(has_at_least(
        &cfg.validate(),
        Lint::DegenerateFaultPlan,
        Severity::Error
    ));
}

#[test]
fn rollback_without_checkpoint_is_apir505() {
    use apir::fabric::{FabricConfig, FaultConfig};
    let mut cfg = FabricConfig {
        max_rollbacks: 2,
        checkpoint_interval: 0,
        ..FabricConfig::default()
    };
    cfg.faults = FaultConfig::chaos(1);
    let report = cfg.validate();
    assert!(has_at_least(
        &report,
        Lint::RollbackWithoutCheckpoint,
        Severity::Error
    ));
    assert_eq!(Lint::RollbackWithoutCheckpoint.code(), "APIR505");
    // Arming the checkpoint clears the error.
    cfg.checkpoint_interval = 256;
    assert!(!cfg.validate().has_errors());
}

#[test]
fn checkpoint_never_fires_is_apir506() {
    use apir::fabric::FabricConfig;
    let cfg = FabricConfig {
        checkpoint_interval: 10_000_000,
        max_cycles: 1_000_000,
        ..FabricConfig::default()
    };
    let report = cfg.validate();
    assert!(has_at_least(
        &report,
        Lint::CheckpointNeverFires,
        Severity::Warn
    ));
    assert_eq!(Lint::CheckpointNeverFires.code(), "APIR506");
    // A warning, not an error: the cycle-0 checkpoint still exists, so
    // the config is odd but runnable.
    assert!(!report.has_errors());
}

#[test]
fn rollback_without_faults_is_apir507() {
    use apir::fabric::FabricConfig;
    let cfg = FabricConfig {
        max_rollbacks: 4,
        checkpoint_interval: 256,
        ..FabricConfig::default()
    };
    let report = cfg.validate();
    assert!(has_at_least(
        &report,
        Lint::RollbackWithoutFaults,
        Severity::Info
    ));
    assert_eq!(Lint::RollbackWithoutFaults.code(), "APIR507");
    assert!(!report.has_errors());
}

#[test]
fn builtin_fabric_configs_are_lint_clean() {
    for (name, cfg) in apir::check::builtin_fabric_configs() {
        let report = cfg.validate();
        assert!(
            !report.has_errors(),
            "{name} has config errors:\n{}",
            report.render_text()
        );
    }
}

// ---- seeded single-mutation corruption sweep ----

/// Builds one corrupted spec per mutation kind, returning the lint the
/// analyzer must raise (with the floor severity it must reach), or `None`
/// for the healthy control arm.
fn mutant(kind: u32) -> (Spec, Option<(Lint, Severity)>) {
    let mut s = Spec::new(format!("mutant-{kind}"));
    let r = s.region("data", 64);
    match kind {
        0 => {
            let rule = s.rule(RuleDecl::new_waiting("w", 0, false));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let h = b.alloc_rule(rule, &[]);
            b.rendezvous(h);
            b.finish();
            (s, Some((Lint::WaitingRuleNeverTrue, Severity::Error)))
        }
        1 => {
            let rule = s.rule(RuleDecl::new("w", 1, true).with_countdown(3));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            let h = b.alloc_rule(rule, &[x]);
            b.rendezvous(h);
            b.finish();
            (s, Some((Lint::CountdownOutOfRange, Severity::Error)))
        }
        2 => {
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            b.enqueue(ts, &[x, x], None);
            b.finish();
            (s, Some((Lint::EnqueueArityMismatch, Severity::Error)))
        }
        3 => {
            let rule = s.rule(RuleDecl::new("w", 2, true));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            let h = b.alloc_rule(rule, &[x]);
            b.rendezvous(h);
            b.finish();
            (s, Some((Lint::RuleParamArityMismatch, Severity::Error)))
        }
        4 => {
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            b.rendezvous(x);
            b.finish();
            (s, Some((Lint::RendezvousWithoutAlloc, Severity::Error)))
        }
        5 => {
            let rule = s.rule(RuleDecl::new("w", 0, true));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            b.alloc_rule(rule, &[]);
            b.finish();
            (s, Some((Lint::UnbalancedRuleTokens, Severity::Error)))
        }
        6 => {
            let rule = s.rule(RuleDecl::new("w", 0, true));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            let h = b.alloc_rule_if(rule, &[], x);
            b.rendezvous(h);
            b.finish();
            (s, Some((Lint::GuardMismatch, Severity::Error)))
        }
        7 => {
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            b.requeue(&[x], None);
            b.finish();
            (s, Some((Lint::UnguardedRequeue, Severity::Warn)))
        }
        8 => {
            let ta = s.task_set("a", TaskSetKind::ForAll, 1, &["i"]);
            let tb = s.task_set("b", TaskSetKind::ForAll, 1, &["i"]);
            for ts in [ta, tb] {
                let mut b = s.body(ts);
                let i = b.field(0);
                b.store_plain(r, i, i);
                b.finish();
            }
            (s, Some((Lint::StoreStoreRace, Severity::Error)))
        }
        9 => {
            let ghost = s.label("ghost");
            let rule = s.rule(RuleDecl::new("w", 0, true).on_label(
                ghost,
                c(1),
                RuleAction::Return(false),
            ));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let h = b.alloc_rule(rule, &[]);
            b.rendezvous(h);
            b.finish();
            (s, Some((Lint::UnemittedLabel, Severity::Error)))
        }
        _ => {
            // Healthy control: guarded store under a rule verdict, a label
            // the rule actually listens on, a claimed lane.
            let l = s.label("commit");
            let rule = s.rule(RuleDecl::new("w", 1, true).on_label(
                l,
                eq(ev(0), param(0)),
                RuleAction::Return(false),
            ));
            let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["x"]);
            let mut b = s.body(ts);
            let x = b.field(0);
            b.emit(l, &[x], None);
            let h = b.alloc_rule(rule, &[x]);
            let rv = b.rendezvous(h);
            b.store(r, x, x, apir::core::op::StoreKind::Plain, Some(rv));
            b.finish();
            (s, None)
        }
    }
}

props! {
    cases = 64;

    /// Any single seeded corruption of a healthy spec is caught by the
    /// analyzer with at least the expected lint at its floor severity; the
    /// healthy control arm stays clean.
    fn single_mutation_never_passes_silently(g) {
        let kind = g.gen_range(0u32..11);
        let (spec, expected) = mutant(kind);
        let report = check_all(&spec);
        match expected {
            Some((lint, floor)) => {
                assert!(
                    report.diagnostics().iter().any(|d| d.lint == lint && d.severity >= floor),
                    "mutation {kind} passed silently; report:\n{}",
                    report.render_text()
                );
            }
            None => {
                assert!(
                    !report.has_errors(),
                    "control spec has errors:\n{}",
                    report.render_text()
                );
            }
        }
    }
}
