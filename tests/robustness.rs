//! Robustness-path tests: the progress watchdog's escalation ladder,
//! rendezvous timeout bounces, the partial reports carried by every
//! runtime error (`Deadlock`, `MaxCycles`, `LinkFailed`), and the
//! checkpoint/rollback ladder that turns terminal link failures into
//! bounded rollback-and-replay recoveries.

use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::build_app;
use apir::bench::Scale;
use apir::core::interp::SeqInterp;
use apir::core::op::AluOp;
use apir::core::spec::{Spec, TaskSetKind};
use apir::core::ProgramInput;
use apir::fabric::{Fabric, FabricConfig, FabricError, FaultConfig};

/// A one-task spec whose only work is a cold-cache load: the miss's QPI
/// round trip is the longest silent (no-progress) stretch the fabric has.
fn one_miss_spec() -> (Spec, ProgramInput) {
    let mut s = Spec::new("one-miss");
    let r = s.region("data", 64);
    let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["i"]);
    let mut b = s.body(ts);
    let i = b.field(0);
    let v = b.load(r, i);
    let one = b.konst(1);
    let v1 = b.alu(AluOp::Add, v, one);
    b.store_plain(r, i, v1);
    b.finish();
    let s = s.build().unwrap();
    let mut input = ProgramInput::new(&s);
    input.seed(&s, ts, &[0]);
    (s, input)
}

#[test]
fn watchdog_escalation_rescues_a_slow_miss() {
    // Shrink the watchdog window below the miss latency: the silent QPI
    // round trip trips the watchdog, the free escalation runs (a no-op
    // here — nothing to force or flush), and the run must then complete
    // instead of being declared dead.
    let (s, input) = one_miss_spec();
    let cfg = FabricConfig {
        deadlock_cycles: 30,
        rendezvous_timeout: 16,
        ..FabricConfig::default()
    };
    let report = Fabric::new(&s, &input, cfg)
        .run()
        .expect("escalation must rescue the stalled miss");
    assert_eq!(report.retired, vec![1]);
    assert!(
        report.faults.watchdog_escalations >= 1,
        "the watchdog never fired: {:?}",
        report.faults
    );
}

#[test]
fn true_deadlock_carries_partial_report_and_diagnostics() {
    // Strangle the QPI link so the miss can never be admitted: the first
    // watchdog window escalates (futile), the second declares deadlock.
    // The error must carry the partial report and the extended
    // diagnostics (queue occupancy, in-flight transfer ages).
    let (s, input) = one_miss_spec();
    let mut cfg = FabricConfig {
        deadlock_cycles: 100,
        rendezvous_timeout: 16,
        ..FabricConfig::default()
    };
    cfg.mem.qpi_gbps = 1e-9;
    let err = Fabric::new(&s, &input, cfg).run().unwrap_err();
    let FabricError::Deadlock {
        cycle,
        ref diagnostics,
        ..
    } = err
    else {
        panic!("expected Deadlock, got {err}");
    };
    assert!(cycle > 100, "deadlock declared too early at {cycle}");
    assert!(
        diagnostics.contains("mshr_ages"),
        "missing MSHR ages: {diagnostics}"
    );
    let report = err.partial_report().expect("deadlock carries a report");
    assert_eq!(report.cycles, cycle);
    assert!(
        report.faults.watchdog_escalations >= 1,
        "deadlock must only be declared after an escalation attempt"
    );
    // The partial report still renders valid deterministic JSON.
    let doc = apir_util::json::parse(&report.to_json()).expect("valid JSON");
    assert!(doc.get("faults").is_some());
}

#[test]
fn exhausted_link_retries_escalate_to_link_failed() {
    // Certain drop: every QPI admission is lost, the bounded retry ladder
    // runs dry, and the fabric reports the permanent link failure with a
    // partial report instead of spinning forever.
    let (s, input) = one_miss_spec();
    let mut cfg = FabricConfig::default();
    cfg.faults = FaultConfig {
        seed: 7,
        drop_rate: 1.0,
        retry_timeout: 4,
        max_retries: 2,
        ..FaultConfig::default()
    };
    let err = Fabric::new(&s, &input, cfg).run().unwrap_err();
    let FabricError::LinkFailed {
        cycle,
        ref diagnostics,
        ..
    } = err
    else {
        panic!("expected LinkFailed, got {err}");
    };
    assert!(cycle > 0);
    assert!(
        diagnostics.contains("dropped"),
        "diagnostics must name the lost transfer: {diagnostics}"
    );
    let report = err.partial_report().expect("link failure carries a report");
    assert_eq!(report.faults.link_escalated, 1);
    assert!(report.faults.link_dropped > report.faults.link_retried);
}

#[test]
fn partial_report_json_stamps_the_terminal_cause() {
    // Satellite: `terminated: {kind, cycle}` must ride on the partial
    // report document, so campaign error records and snapshots agree on
    // where a run died.
    let (s, input) = one_miss_spec();
    let mut cfg = FabricConfig {
        deadlock_cycles: 100,
        rendezvous_timeout: 16,
        ..FabricConfig::default()
    };
    cfg.mem.qpi_gbps = 1e-9;
    let err = Fabric::new(&s, &input, cfg).run().unwrap_err();
    let FabricError::Deadlock { cycle, .. } = err else {
        panic!("expected Deadlock, got {err}");
    };
    let doc = err.partial_report_json().expect("deadlock carries a report");
    let t = doc.get("terminated").expect("terminated stamp present");
    assert_eq!(t.get("kind").unwrap().as_str(), Some("deadlock"));
    assert_eq!(t.get("cycle").unwrap().as_u64(), Some(cycle));
    // Same stamp for a permanent link failure.
    let mut cfg = FabricConfig::default();
    cfg.faults = FaultConfig {
        seed: 7,
        drop_rate: 1.0,
        retry_timeout: 4,
        max_retries: 2,
        ..FaultConfig::default()
    };
    let err = Fabric::new(&s, &input, cfg).run().unwrap_err();
    let doc = err.partial_report_json().expect("link failure carries a report");
    let t = doc.get("terminated").unwrap();
    assert_eq!(t.get("kind").unwrap().as_str(), Some("link_failed"));
    assert_eq!(
        t.get("cycle").unwrap().as_u64(),
        err.failure_cycle(),
        "stamp and accessor agree"
    );
}

/// A drop plan harsh enough that *some* seed exhausts the retry ladder
/// (`max_retries: 1` means one double-drop kills the link) but mild
/// enough that the run as a whole is survivable once the doomed window
/// is replayed under a fresh salt.
fn flaky_link(seed: u64) -> FaultConfig {
    FaultConfig {
        seed,
        drop_rate: 0.03,
        retry_timeout: 4,
        max_retries: 1,
        ..FaultConfig::default()
    }
}

#[test]
fn rollback_recovery_completes_a_run_that_link_failure_killed() {
    // Acceptance: find a chaos seed whose run dies with LinkFailed when
    // rollbacks are off, then re-run the *same* seed with periodic
    // checkpoints and bounded rollback armed — it must now complete,
    // pass the app checker, surface `fault.rollback.*`, and rerun
    // byte-identically.
    let name = "SPEC-BFS";
    let app = build_app(name, Scale::Tiny);
    let base = |seed: u64| {
        let mut cfg = synthesized_cfg(name, Scale::Tiny);
        scale_cache(&mut cfg, &app.input);
        (app.tune)(&mut cfg);
        cfg.faults = flaky_link(seed);
        cfg
    };
    let mut recovered = None;
    for seed in 0..64 {
        let doomed = Fabric::new(&app.spec, &app.input, base(seed)).run();
        let Err(FabricError::LinkFailed { cycle, .. }) = doomed else {
            continue;
        };
        let mut cfg = base(seed);
        cfg.checkpoint_interval = 256;
        cfg.max_rollbacks = 16;
        let Ok(report) = Fabric::new(&app.spec, &app.input, cfg.clone()).run() else {
            // This seed is doomed even with replay headroom; keep looking.
            continue;
        };
        recovered = Some((seed, cycle, cfg, report));
        break;
    }
    let (seed, fail_cycle, cfg, report) =
        recovered.expect("no seed in 0..64 exercised the rollback ladder");

    // The recovery is real: the checker passes and the report says how
    // many times the fabric rewound.
    (app.check)(&report.mem_image)
        .unwrap_or_else(|e| panic!("seed {seed}: recovered image is bad: {e}"));
    let rb = report
        .rollbacks
        .as_ref()
        .expect("armed rollback always reports its block");
    assert!(rb.count > 0, "seed {seed}: completed without rolling back");
    assert_eq!(rb.events.len() as u64, rb.count);
    assert!(
        rb.events.iter().any(|&(fail, resume)| fail >= resume),
        "rollback events rewind: {:?}",
        rb.events
    );
    assert_eq!(
        report.metrics.counter("fault.rollback.count"),
        Some(rb.count),
        "metrics and report block agree"
    );
    assert!(
        report.metrics.counter("fault.rollback.replayed_cycles").unwrap() >= 1,
        "replay must cover at least the doomed stretch"
    );
    // The first rollback fires at or after the cycle the unprotected
    // run died at (same seed, same fault stream up to that point).
    assert_eq!(rb.events[0].0, fail_cycle, "seed {seed}");

    // Deterministic: the same armed config reruns byte-identically.
    let again = Fabric::new(&app.spec, &app.input, cfg).run().unwrap();
    assert_eq!(report.to_json(), again.to_json(), "seed {seed}");
}

#[test]
fn unarmed_runs_report_no_rollback_surface() {
    // Golden protection: with `max_rollbacks == 0` (the default), the
    // report has no `rollbacks` block and no `fault.rollback.*` keys,
    // so every pre-rollback golden stays byte-identical.
    let name = "SPEC-BFS";
    let app = build_app(name, Scale::Tiny);
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    let report = Fabric::new(&app.spec, &app.input, cfg).run().unwrap();
    assert!(report.rollbacks.is_none());
    assert_eq!(report.metrics.counter("fault.rollback.count"), None);
    assert!(!report.to_json().contains("rollback"));
}

#[test]
fn rendezvous_timeouts_bounce_and_still_retire() {
    // Satellite: pin the bounce path. COOR-BFS parks tasks in rendezvous
    // stations waiting for the serializing rule; with a tiny timeout they
    // bounce (verdict false), requeue, and retry — the run must still
    // retire everything and produce the exact interpreter image.
    let name = "COOR-BFS";
    let app = build_app(name, Scale::Tiny);
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    cfg.rendezvous_timeout = 8;
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .expect("bounced run still completes");
    assert!(report.bounces > 0, "timeout never bounced anyone");
    (app.check)(&report.mem_image).expect("bounced run is still correct");
    let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
    assert_eq!(
        seq.mem,
        report.mem_image,
        "bounces must not change the final image: {:?}",
        seq.mem.diff(&report.mem_image, 8)
    );
}
