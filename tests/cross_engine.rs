//! Cross-engine integration tests: every benchmark must produce correct
//! results on all three engines (sequential interpreter, round-based
//! software runtime, cycle-level fabric), across scales and seeds.

use apir::apps::{bfs, lu, mst, sssp};
use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::{build_app, APP_NAMES};
use apir::bench::Scale;
use apir::core::interp::SeqInterp;
use apir::core::MemAccess;
use apir::fabric::{Fabric, FabricConfig};
use apir::runtime::{ParConfig, ParRunner};
use apir::workloads::gen;
use apir::workloads::sparse::BlockPattern;
use std::sync::Arc;

fn fabric_cfg() -> FabricConfig {
    FabricConfig::default()
}

/// The synthesized + tuned configuration a benchmark runs under.
fn app_cfg(name: &str, app: &apir::apps::AppInstance) -> FabricConfig {
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    cfg
}

/// Union-find partition equivalence: same connectivity, any tree shape.
fn same_partition(a: &apir::core::MemImage, b: &apir::core::MemImage, n: u64) {
    let parent = apir::core::spec::RegionId(0);
    let find = |mem: &apir::core::MemImage, mut x: u64| {
        while mem.read(parent, x) != x {
            x = mem.read(parent, x);
        }
        x
    };
    for i in 0..n {
        for j in (i + 1)..n {
            assert_eq!(
                find(a, i) == find(a, j),
                find(b, i) == find(b, j),
                "partition mismatch at ({i},{j})"
            );
        }
    }
}

#[test]
fn six_apps_interp_vs_fabric_final_memory() {
    // Every builtin benchmark, sequential interpreter vs cycle-level
    // fabric, on the exact configuration the bench baseline uses.
    //
    // Where the final image is order-independent the comparison is exact
    // word-for-word equality. Two apps have legitimately order-dependent
    // images and get their documented weaker equivalence instead:
    //   * SPEC-MST — commits serialize in weight order so the MST flags
    //     match, but the union-find *shape* depends on which finds ran
    //     before which commits; only the partition must agree;
    //   * SPEC-DMR — which point a cavity's re-triangulation inserts
    //     depends on commit order; the checker verifies the resulting
    //     mesh (conforming, no remaining bad triangles) for both engines.
    for name in APP_NAMES {
        let app = build_app(name, Scale::Tiny);
        let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
        (app.check)(&seq.mem).unwrap_or_else(|e| panic!("{name} interp: {e}"));
        let fab = Fabric::new(&app.spec, &app.input, app_cfg(name, &app))
            .run()
            .unwrap_or_else(|e| panic!("{name} fabric: {e}"));
        (app.check)(&fab.mem_image).unwrap_or_else(|e| panic!("{name} fabric: {e}"));
        match name {
            "SPEC-MST" => {
                let n = app.input.mem.capacity(apir::core::spec::RegionId(0));
                same_partition(&seq.mem, &fab.mem_image, n as u64);
            }
            "SPEC-DMR" => {} // checker-only (see above)
            _ => {
                assert_eq!(
                    seq.mem, fab.mem_image,
                    "{name}: final images differ: {:?}",
                    seq.mem.diff(&fab.mem_image, 8)
                );
            }
        }
    }
}

#[test]
fn six_apps_fabric_report_json_is_deterministic() {
    // The determinism canary: two identical fabric runs must serialize
    // to byte-identical JSON (this is what makes BENCH_fabric.json and
    // the report goldens reproducible).
    for name in APP_NAMES {
        let app = build_app(name, Scale::Tiny);
        let cfg = app_cfg(name, &app);
        let a = Fabric::new(&app.spec, &app.input, cfg.clone())
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let b = Fabric::new(&app.spec, &app.input, cfg)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "{name}: re-run produced a different report"
        );
    }
}

#[test]
fn bfs_three_engines_agree_across_seeds() {
    for seed in [1u64, 2, 3] {
        let g = Arc::new(gen::road_network(14, 14, 0.9, 6, seed));
        for variant in [bfs::BfsVariant::Spec, bfs::BfsVariant::Coor] {
            let app = bfs::build(g.clone(), 0, variant);
            let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
            (app.check)(&seq.mem).unwrap();
            let par = ParRunner::run(&app.spec, &app.input, ParConfig::default()).unwrap();
            (app.check)(&par.mem).unwrap();
            let fab = Fabric::new(&app.spec, &app.input, fabric_cfg()).run().unwrap();
            (app.check)(&fab.mem_image)
                .unwrap_or_else(|e| panic!("{variant:?} seed {seed}: {e}"));
        }
    }
}

#[test]
fn sssp_on_scale_free_graph() {
    // RMAT stresses the accelerator differently from road networks: hubs
    // create heavy contention on a few vertices.
    let g = Arc::new(gen::rmat(8, 6, 9, 4));
    let app = sssp::build(g, 0);
    let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
    (app.check)(&seq.mem).unwrap();
    let fab = Fabric::new(&app.spec, &app.input, fabric_cfg()).run().unwrap();
    (app.check)(&fab.mem_image).unwrap();
}

#[test]
fn mst_fabric_agrees_with_interpreter() {
    let n = 80usize;
    let edges = Arc::new(gen::edge_list_distinct_weights(n, 260, 9));
    let app = mst::build(n, edges);
    let seq = SeqInterp::run(&app.spec, &app.input).unwrap();
    let fab = Fabric::new(&app.spec, &app.input, fabric_cfg()).run().unwrap();
    (app.check)(&fab.mem_image).unwrap();
    // The MST flags match exactly (commits serialize in weight order);
    // the union-find *shape* may differ when a commit lands between a
    // task's find loads and its rule allocation, but the partition it
    // encodes must be identical to the sequential one.
    let parent = apir::core::spec::RegionId(0);
    let find = |mem: &apir::core::MemImage, mut x: u64| {
        while mem.read(parent, x) != x {
            x = mem.read(parent, x);
        }
        x
    };
    for i in 0..n as u64 {
        for j in (i + 1)..n as u64 {
            let same_seq = find(&seq.mem, i) == find(&seq.mem, j);
            let same_fab = find(&fab.mem_image, i) == find(&fab.mem_image, j);
            assert_eq!(same_seq, same_fab, "partition mismatch at ({i},{j})");
        }
    }
}

#[test]
fn lu_on_software_runtime_tracks_extern_reads() {
    // Regression: extern IP cores read shared dependence counters via
    // `MemAccess::read(&self, ..)`; the speculative runtime must include
    // those reads in its conflict detection or concurrent commits lose
    // decrements.
    let app = lu::build(&BlockPattern::random(5, 0.5, 3), 6, 3);
    let par = ParRunner::run(&app.spec, &app.input, ParConfig::default()).unwrap();
    (app.check)(&par.mem).unwrap();
}

#[test]
fn lu_tolerates_dense_and_sparse_patterns() {
    for density in [0.15, 0.9] {
        let app = lu::build(&BlockPattern::random(4, density, 8), 5, 8);
        let fab = Fabric::new(&app.spec, &app.input, fabric_cfg()).run().unwrap();
        (app.check)(&fab.mem_image)
            .unwrap_or_else(|e| panic!("density {density}: {e}"));
    }
}

#[test]
fn disconnected_graph_is_handled() {
    // Vertex 0's component does not cover the graph; unreachable vertices
    // must keep INF.
    let edges = vec![(0u32, 1u32, 1u32), (2, 3, 1)];
    let g = Arc::new(apir::workloads::CsrGraph::from_undirected_edges(4, &edges));
    let app = bfs::build(g, 0, bfs::BfsVariant::Spec);
    let fab = Fabric::new(&app.spec, &app.input, fabric_cfg()).run().unwrap();
    (app.check)(&fab.mem_image).unwrap();
}

#[test]
fn single_vertex_graph() {
    let g = Arc::new(apir::workloads::CsrGraph::from_edges(1, &[]));
    let app = bfs::build(g, 0, bfs::BfsVariant::Spec);
    let fab = Fabric::new(&app.spec, &app.input, fabric_cfg()).run().unwrap();
    (app.check)(&fab.mem_image).unwrap();
    assert_eq!(fab.total_retired(), 1);
}

#[test]
fn tiny_fabric_configurations_still_correct() {
    // Starved resources (1 pipeline, 2 lanes, tiny windows/queues) must
    // degrade performance, never correctness.
    let g = Arc::new(gen::road_network(8, 8, 0.9, 4, 6));
    let cfg = FabricConfig {
        pipelines_per_set: 1,
        rule_lanes: 2,
        lsu_window: 2,
        rendezvous_window: 2,
        queue_banks: 1,
        queue_capacity: 64,
        event_bus_width: 1,
        ..FabricConfig::default()
    };
    for variant in [bfs::BfsVariant::Spec, bfs::BfsVariant::Coor] {
        let app = bfs::build(g.clone(), 0, variant);
        let fab = Fabric::new(&app.spec, &app.input, cfg.clone()).run().unwrap();
        (app.check)(&fab.mem_image).unwrap_or_else(|e| panic!("{variant:?}: {e}"));
    }
}

#[test]
fn bandwidth_starved_fabric_still_correct() {
    let g = Arc::new(gen::road_network(8, 8, 0.9, 4, 7));
    let mut cfg = FabricConfig::default();
    cfg.mem.qpi_gbps = 0.25;
    let app = bfs::build(g, 0, bfs::BfsVariant::Spec);
    let slow = Fabric::new(&app.spec, &app.input, cfg).run().unwrap();
    (app.check)(&slow.mem_image).unwrap();
    let fast = Fabric::new(&app.spec, &app.input, FabricConfig::default())
        .run()
        .unwrap();
    assert!(
        slow.cycles > fast.cycles,
        "bandwidth starvation must cost cycles: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}
