//! Differential gate for the event-wheel scheduler.
//!
//! `FabricConfig::dense_tick` keeps the original dense per-cycle loop
//! available as an oracle. The wheel must execute *identical*
//! cycle-accurate semantics — every counter, histogram, fault draw,
//! and retirement byte-identical — and only change wall-clock time.
//! These tests run every builtin app fault-free and under the pinned
//! chaos campaigns with both schedulers and compare:
//!
//! 1. the full deterministic JSON report (`to_json` — counters,
//!    utilization, metrics snapshot, fault totals),
//! 2. the typed fault mix,
//! 3. the complete `(cycle, task_set)` retirement log.
//!
//! A regression test also pins the `fault_window == 1` schedule: the
//! old `now % fw == 1` predicate never fired for a one-cycle window
//! (no cycle satisfies `now % 1 == 1`), so maximum-pressure campaigns
//! silently injected nothing.

use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::{build_app, APP_NAMES};
use apir::bench::Scale;
use apir::fabric::{Fabric, FabricConfig, FabricReport, FaultConfig};

/// The synthesized + tuned fault-free configuration, recording
/// retirements so the schedule itself is compared, not just totals.
fn tuned_cfg(name: &str, app: &apir::apps::AppInstance) -> FabricConfig {
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    cfg.record_retirements = true;
    // Arm the windowed timeline so the equivalence gate also covers the
    // wheel's O(1) replay of skipped stretches (the `timeline` block is
    // part of `to_json`, so any divergence fails the byte comparison),
    // along with the replayed stall-cause attribution counters.
    cfg.timeline_window = 32;
    cfg.timeline_capacity = 256;
    cfg
}

/// Same pinned chaos campaign seeds as `tests/chaos.rs`.
const CAMPAIGNS: [(&str, [u64; 3]); 6] = [
    ("SPEC-BFS", [1, 2, 3]),
    ("COOR-BFS", [1, 2, 3]),
    ("SPEC-SSSP", [1, 2, 3]),
    ("SPEC-MST", [1, 2, 4]),
    ("SPEC-DMR", [1, 2, 3]),
    ("COOR-LU", [1, 2, 3]),
];

fn run(name: &str, app: &apir::apps::AppInstance, cfg: FabricConfig) -> FabricReport {
    Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{name}: run failed: {e}"))
}

/// Runs one config under both schedulers and asserts full equivalence.
fn assert_schedulers_agree(name: &str, app: &apir::apps::AppInstance, cfg: FabricConfig, tag: &str) {
    let mut dense_cfg = cfg.clone();
    dense_cfg.dense_tick = true;
    let mut wheel_cfg = cfg;
    wheel_cfg.dense_tick = false;
    let dense = run(name, app, dense_cfg);
    let wheel = run(name, app, wheel_cfg);
    assert_eq!(
        dense.to_json(),
        wheel.to_json(),
        "{name} {tag}: dense and wheel reports diverged"
    );
    assert_eq!(
        dense.faults, wheel.faults,
        "{name} {tag}: fault mixes diverged"
    );
    assert_eq!(
        dense.retirements, wheel.retirements,
        "{name} {tag}: retirement schedules diverged"
    );
    assert_eq!(
        dense.mem_image, wheel.mem_image,
        "{name} {tag}: final memory images diverged"
    );
}

#[test]
fn dense_and_wheel_agree_fault_free() {
    for name in APP_NAMES {
        let app = build_app(name, Scale::Tiny);
        let cfg = tuned_cfg(name, &app);
        assert_schedulers_agree(name, &app, cfg, "fault-free");
    }
}

#[test]
fn dense_and_wheel_agree_under_chaos() {
    for (name, seeds) in CAMPAIGNS {
        let app = build_app(name, Scale::Tiny);
        for seed in seeds {
            let mut cfg = tuned_cfg(name, &app);
            cfg.faults = FaultConfig::chaos(seed);
            assert_schedulers_agree(name, &app, cfg, &format!("chaos seed {seed}"));
        }
    }
}

#[test]
fn fault_window_one_injects_faults() {
    // Regression for the off-by-one: with `fault_window == 1` the trial
    // predicate is `now % 1 == 1 % 1`, true every cycle — the old
    // `now % 1 == 1` comparison was never true, so a maximum-pressure
    // campaign ran fault-free without saying so.
    let name = "SPEC-BFS";
    let app = build_app(name, Scale::Tiny);
    let mut cfg = tuned_cfg(name, &app);
    cfg.faults = FaultConfig::chaos(1);
    cfg.faults.fault_window = 1;
    let report = run(name, &app, cfg.clone());
    let f = &report.faults;
    assert!(
        f.lanes_masked + f.banks_masked > 0,
        "window-1 campaign must inject structural faults, got {f:?}"
    );
    // Per-cycle trials hit the masking refusal limits (half the lanes /
    // banks stay in service) long before quiescence; pin the saturated
    // schedule so a future predicate regression is caught exactly.
    assert!(
        f.lanes_masked >= f.banks_masked,
        "lane trials run per engine per window: {f:?}"
    );
    // And the run still recovers: graceful degradation, not collapse.
    (app.check)(&report.mem_image).unwrap_or_else(|e| panic!("{name}: {e}"));
    // The schedule is identical under both schedulers.
    assert_schedulers_agree(name, &app, cfg, "fault_window=1");
}

#[test]
fn fault_window_schedule_is_pinned() {
    // Pin the exact structural-fault counts for the window-1 campaign:
    // any change to the trial predicate, the RNG draw order, or the
    // wheel's fault-window wake times shows up here first.
    let name = "SPEC-BFS";
    let app = build_app(name, Scale::Tiny);
    let mut cfg = tuned_cfg(name, &app);
    cfg.faults = FaultConfig::chaos(1);
    cfg.faults.fault_window = 1;
    let with_one = run(name, &app, cfg).faults;

    let mut cfg16 = tuned_cfg(name, &app);
    cfg16.faults = FaultConfig::chaos(1);
    assert_eq!(cfg16.faults.fault_window, 16, "chaos preset window");
    let with_sixteen = run(name, &app, cfg16).faults;

    // Both campaigns run long enough to hit the half-resources masking
    // refusal cap, so the structural counts are stable — pin them.
    // Before the fix, `with_one` masked exactly zero of each.
    assert_eq!(with_one.lanes_masked, 32, "window-1 schedule drifted: {with_one:?}");
    assert_eq!(with_one.banks_masked, 4, "window-1 schedule drifted: {with_one:?}");
    // Per-cycle trials can never inject less than 16-cycle windows.
    assert!(
        with_one.lanes_masked + with_one.banks_masked
            >= with_sixteen.lanes_masked + with_sixteen.banks_masked,
        "per-cycle trials must not under-inject windowed trials: {with_one:?} vs {with_sixteen:?}"
    );
}

/// Wall-clock probe backing the README performance table. Run with
/// `cargo test --release --test scheduler_equiv probe -- --ignored --nocapture`.
#[test]
#[ignore]
fn probe_scheduler_wall_time() {
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "app", "cycles", "dense ms", "wheel ms", "speedup"
    );
    for name in APP_NAMES {
        let app = build_app(name, Scale::Tiny);
        let mut dense_cfg = tuned_cfg(name, &app);
        dense_cfg.record_retirements = false;
        dense_cfg.dense_tick = true;
        let mut wheel_cfg = dense_cfg.clone();
        wheel_cfg.dense_tick = false;
        let t0 = std::time::Instant::now();
        let d = run(name, &app, dense_cfg);
        let dense_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let w = run(name, &app, wheel_cfg);
        let wheel_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(d.cycles, w.cycles);
        println!(
            "{:<10} {:>10} {:>12.2} {:>12.2} {:>7.1}x",
            name,
            w.cycles,
            dense_ms,
            wheel_ms,
            dense_ms / wheel_ms
        );
    }
}
