//! Property tests for the campaign dispatcher
//! (`apir_runtime::dispatch::run_ordered`), the machinery under the
//! byte-determinism contract: for any plan shape, thread count,
//! in-flight cap, and pattern of panicking jobs,
//!
//! - every job executes exactly once,
//! - every job's result is delivered exactly once, in index order,
//! - the completed-but-undelivered window never exceeds the cap, and
//! - a panicking job becomes an `Err` delivery, never a lost slot or a
//!   dead fleet.

use apir::runtime::dispatch::run_ordered;
use apir_util::props;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Once;

/// Injected panics are expected; keep them off the test's stderr while
/// leaving real failures loud.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("prop-boom") {
                prev(info);
            }
        }));
    });
}

props! {
    cases = 48;

    /// Exactly-once execution and in-order delivery under random plan
    /// shapes, thread counts, caps, and injected panics.
    fn dispatcher_is_exactly_once_in_order_and_bounded(g) {
        quiet_injected_panics();
        let n = g.gen_range(0usize..48);
        let threads = g.gen_range(1usize..9);
        let cap = g.gen_range(1usize..7);
        let booms: Vec<bool> = (0..n).map(|_| g.gen_bool(0.2)).collect();

        let runs: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let mut delivered: Vec<(usize, Result<u64, String>)> = Vec::new();
        let stats = run_ordered(
            n,
            threads,
            cap,
            |i| {
                runs[i].fetch_add(1, Ordering::SeqCst);
                if booms[i] {
                    panic!("prop-boom {i}");
                }
                i as u64 * 3
            },
            |i, r| delivered.push((i, r)),
        );

        // Exactly-once execution…
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::SeqCst), 1, "job {i} ran a wrong number of times");
        }
        // …exactly-once, in-order delivery…
        assert_eq!(delivered.len(), n);
        for (slot, (i, r)) in delivered.iter().enumerate() {
            assert_eq!(*i, slot, "delivery out of order");
            match r {
                Ok(v) => {
                    assert!(!booms[slot], "job {slot} panicked but delivered Ok");
                    assert_eq!(*v, slot as u64 * 3);
                }
                Err(msg) => {
                    assert!(booms[slot], "job {slot} delivered Err without panicking");
                    assert!(msg.contains("prop-boom"), "panic message lost: {msg}");
                }
            }
        }
        // …panics fully accounted…
        let expected_panics = booms.iter().filter(|&&b| b).count();
        assert_eq!(stats.panics, expected_panics);
        assert_eq!(stats.jobs, n);
        // …and the in-flight window bounded by the cap.
        assert!(
            stats.peak_inflight <= cap.max(1),
            "peak in-flight {} exceeds cap {}",
            stats.peak_inflight,
            cap
        );
    }

    /// The merged delivery is a pure function of the job results: any
    /// two (threads, cap) choices produce identical streams.
    fn dispatcher_delivery_is_schedule_invariant(g) {
        quiet_injected_panics();
        let n = g.gen_range(1usize..40);
        let booms: Vec<bool> = (0..n).map(|_| g.gen_bool(0.15)).collect();
        let run = |threads: usize, cap: usize| {
            let mut out: Vec<String> = Vec::new();
            run_ordered(
                n,
                threads,
                cap,
                |i| {
                    if booms[i] {
                        panic!("prop-boom {i}");
                    }
                    format!("r{i}")
                },
                |i, r| out.push(format!("{i}:{r:?}")),
            );
            out
        };
        let a = run(g.gen_range(1usize..9), g.gen_range(1usize..5));
        let b = run(g.gen_range(1usize..9), g.gen_range(1usize..5));
        assert_eq!(a, b, "delivery depends on the schedule");
    }
}
