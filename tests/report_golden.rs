//! Report goldens: exact counter values per benchmark at the pinned
//! baseline scale.
//!
//! The fabric is a deterministic simulator over seeded workload
//! generators, so every counter in a run's report is a pure function of
//! the code. These goldens pin that function: an intentional change to
//! the microarchitecture (scheduling, cache, allocator...) will shift
//! them — update the table and say why in the commit — while an
//! *unintentional* divergence (a nondeterministic HashMap iteration, an
//! uninitialized latch, a platform-dependent float path) fails here
//! first, long before it would corrupt a figure.
//!
//! Regenerate the table with:
//! `cargo run --release -p apir-bench --bin figures -- bench`
//! plus the `requeues`/`bounces` columns from
//! `apir-trace run <APP> --scale tiny`.

use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::build_app;
use apir::bench::Scale;
use apir::fabric::{Fabric, FabricReport};

struct Golden {
    cycles: u64,
    retired: u64,
    squashes: u64,
    requeues: u64,
    bounces: u64,
    mem_hits: u64,
    mem_misses: u64,
    utilization: f64,
}

/// One verified fabric run at the pinned baseline configuration.
fn baseline_run(name: &str) -> FabricReport {
    let app = build_app(name, Scale::Tiny);
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    (app.check)(&report.mem_image).unwrap_or_else(|e| panic!("{name}: {e}"));
    report
}

const GOLDENS: [(&str, Golden); 6] = [
    ("SPEC-BFS", Golden { cycles: 1696, retired: 276, squashes: 0, requeues: 0, bounces: 0, mem_hits: 435, mem_misses: 117, utilization: 0.014449104845626072 }),
    ("COOR-BFS", Golden { cycles: 2990, retired: 276, squashes: 0, requeues: 0, bounces: 0, mem_hits: 420, mem_misses: 132, utilization: 0.006979614588310242 }),
    ("SPEC-SSSP", Golden { cycles: 2772, retired: 1051, squashes: 1, requeues: 0, bounces: 0, mem_hits: 1679, mem_misses: 949, utilization: 0.028501328217237318 }),
    ("SPEC-MST", Golden { cycles: 101073, retired: 1755, squashes: 1320, requeues: 1635, bounces: 247, mem_hits: 3505, mem_misses: 5, utilization: 0.004630408311411144 }),
    ("SPEC-DMR", Golden { cycles: 1050, retired: 15, squashes: 1, requeues: 1, bounces: 0, mem_hits: 1, mem_misses: 14, utilization: 0.002063492063492066 }),
    ("COOR-LU", Golden { cycles: 81, retired: 6, squashes: 0, requeues: 0, bounces: 0, mem_hits: 0, mem_misses: 0, utilization: 0.013888888888888888 }),
];

#[test]
fn reports_match_goldens_exactly() {
    for (name, g) in &GOLDENS {
        let r = baseline_run(name);
        assert_eq!(r.cycles, g.cycles, "{name}: cycles");
        assert_eq!(r.total_retired(), g.retired, "{name}: retired");
        assert_eq!(r.squashes, g.squashes, "{name}: squashes");
        assert_eq!(r.requeues, g.requeues, "{name}: requeues");
        assert_eq!(r.bounces, g.bounces, "{name}: bounces");
        assert_eq!(r.mem.hits, g.mem_hits, "{name}: mem.hits");
        assert_eq!(r.mem.misses, g.mem_misses, "{name}: mem.misses");
        assert!(
            (r.utilization - g.utilization).abs() < 1e-12,
            "{name}: utilization {} != {}",
            r.utilization,
            g.utilization
        );
    }
}

#[test]
fn spec_bfs_stall_cause_vector_is_pinned() {
    // The full stall-cause attribution vector for one app, pinned
    // exactly: any change to the cause classification sites in
    // `tick_pipeline`, the accounting block, or the event wheel's cause
    // replay shows up here first. The causes must also partition the
    // total (`fabric.stall`), which itself is busy/idle-consistent with
    // the run length.
    let r = baseline_run("SPEC-BFS");
    let m = &r.metrics;
    let causes = [
        ("fabric.stall.downstream_full", 8u64),
        ("fabric.stall.queue_full", 0),
        ("fabric.stall.reserve_full", 0),
        ("fabric.stall.mshr_full", 0),
        ("fabric.stall.bandwidth", 0),
        ("fabric.stall.miss_outstanding", 3595),
        ("fabric.stall.rendezvous_parked", 0),
        ("fabric.stall.lane_busy", 0),
        ("fabric.stall.lane_masked", 0),
        ("fabric.stall.bus_full", 0),
    ];
    for (key, want) in causes {
        assert_eq!(m.counter(key), Some(want), "{key} drifted");
    }
    let total: u64 = causes.iter().map(|&(_, n)| n).sum();
    assert_eq!(m.counter("fabric.stall"), Some(total), "causes partition the total");
    let busy = m.counter("fabric.busy").unwrap();
    let idle = m.counter("fabric.idle").unwrap();
    let stages = r.primitive_ops as u64;
    assert_eq!(busy + total + idle, r.cycles * stages, "stage-cycles conserved");
}

#[test]
fn metrics_registry_agrees_with_report_fields() {
    // The registry is a second bookkeeping path for the same events; the
    // stable keys must agree with the legacy report fields on every app.
    for (name, _) in &GOLDENS {
        let r = baseline_run(name);
        let m = &r.metrics;
        assert_eq!(m.counter("fabric.cycles"), Some(r.cycles), "{name}");
        assert_eq!(m.counter("fabric.squashes"), Some(r.squashes), "{name}");
        assert_eq!(m.counter("fabric.requeues"), Some(r.requeues), "{name}");
        assert_eq!(m.counter("fabric.bounces"), Some(r.bounces), "{name}");
        assert_eq!(m.counter("mem.hits"), Some(r.mem.hits), "{name}");
        assert_eq!(m.counter("mem.misses"), Some(r.mem.misses), "{name}");
        let util = m.gauge("fabric.utilization").unwrap();
        assert!((util - r.utilization).abs() < 1e-12, "{name}: gauge");
        let retired_keys: u64 = m
            .entries()
            .iter()
            .filter(|(k, _)| k.starts_with("fabric.retired."))
            .map(|(k, _)| m.counter(k).unwrap())
            .sum();
        assert_eq!(retired_keys, r.total_retired(), "{name}: retired keys");
    }
}
