//! Property-based tests (proptest) on core invariants.

use apir::core::index::IndexTuple;
use apir::core::interp::SeqInterp;
use apir::core::op::AluOp;
use apir::core::spec::{Spec, TaskSetKind};
use apir::core::{MemAccess, ProgramInput};
use apir::fabric::{Fabric, FabricConfig};
use apir::runtime::{ParConfig, ParRunner};
use apir::sim::bandwidth::BandwidthMeter;
use apir::sim::fifo::Fifo;
use apir::workloads::gen;
use apir::workloads::unionfind::{FlatUnionFind, UnionFind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The well-order is total and consistent with lexicographic tuples.
    #[test]
    fn index_order_is_lexicographic(a in proptest::collection::vec(0u64..100, 0..4),
                                    b in proptest::collection::vec(0u64..100, 0..4)) {
        let ia = IndexTuple::new(&a);
        let ib = IndexTuple::new(&b);
        // Pad to MAX_DEPTH manually and compare.
        let pad = |v: &[u64]| {
            let mut p = [0u64; 4];
            p[..v.len()].copy_from_slice(v);
            p
        };
        prop_assert_eq!(ia.cmp(&ib), pad(&a).cmp(&pad(&b)));
    }

    /// Children always order at-or-after their parent.
    #[test]
    fn children_never_precede_parent(parent in proptest::collection::vec(0u64..50, 1..3),
                                     level_off in 0usize..2, ord in 0u64..50) {
        let p = IndexTuple::new(&parent);
        let level = parent.len() + level_off;
        if level >= 1 && level <= 4 {
            let c = p.child(level, ord);
            prop_assert!(p <= c || level <= parent.len(),
                "parent {p:?} child {c:?}");
        }
    }

    /// FIFO preserves order and never loses or duplicates elements.
    #[test]
    fn fifo_preserves_order(ops in proptest::collection::vec(0u32..3, 1..200)) {
        let mut f: Fifo<u64> = Fifo::new(16);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut staged: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 => {
                    if f.try_push(next) {
                        staged.push_back(next);
                    }
                    next += 1;
                }
                1 => {
                    let got = f.pop();
                    prop_assert_eq!(got, model.pop_front());
                }
                _ => {
                    f.commit();
                    model.append(&mut staged);
                }
            }
        }
    }

    /// The bandwidth meter never exceeds its configured rate over time.
    #[test]
    fn bandwidth_never_exceeds_rate(rate in 1.0f64..64.0, req in 1u64..128) {
        let mut m = BandwidthMeter::new(rate);
        let mut moved = 0u64;
        let cycles = 500u64;
        for _ in 0..cycles {
            m.tick();
            while m.try_consume(req) {
                moved += req;
            }
        }
        // Allow the burst window on top of the sustained rate.
        prop_assert!(moved as f64 <= rate * cycles as f64 + rate * 4.0 + req as f64);
    }

    /// Flat union-find partitions match the classic structure under any
    /// union sequence.
    #[test]
    fn union_find_equivalence(edges in proptest::collection::vec((0u32..32, 0u32..32), 0..64)) {
        let mut classic = UnionFind::new(32);
        let mut arr = vec![0u64; 32];
        FlatUnionFind::init(&mut arr);
        let mut flat = FlatUnionFind::new(&mut arr);
        for (a, b) in edges {
            prop_assert_eq!(classic.union(a, b), flat.union(a as u64, b as u64));
        }
        for i in 0..32u32 {
            for j in (i + 1)..32u32 {
                prop_assert_eq!(classic.same(i, j), flat.find(i as u64) == flat.find(j as u64));
            }
        }
    }

    /// The round-based software runtime is sequentially consistent for an
    /// arbitrary mix of read-modify-write tasks.
    #[test]
    fn software_runtime_matches_interpreter(cells in proptest::collection::vec(0u64..6, 1..40),
                                            width in 1usize..16) {
        let mut s = Spec::new("prop");
        let r = s.region("cells", 8);
        let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["cell"]);
        let mut b = s.body(ts);
        let cell = b.field(0);
        let old = b.load(r, cell);
        let three = b.konst(3);
        let new = b.alu(AluOp::Mul, old, three);
        let one = b.konst(1);
        let new1 = b.alu(AluOp::Add, new, one);
        b.store_plain(r, cell, new1);
        b.finish();
        let s = s.build().unwrap();
        let mut input = ProgramInput::new(&s);
        for c in &cells {
            input.seed(&s, ts, &[*c]);
        }
        let seq = SeqInterp::run(&s, &input).unwrap();
        let par = ParRunner::run(&s, &input, ParConfig { width, max_steps: 100_000 }).unwrap();
        prop_assert!(par.mem.diff(&seq.mem, 3).is_empty());
    }
}

proptest! {
    // Fabric runs are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// SPEC-BFS levels are correct on random road networks for any seed
    /// and root.
    #[test]
    fn fabric_bfs_correct_on_random_inputs(seed in 0u64..1000, root in 0u32..64) {
        let g = std::sync::Arc::new(gen::road_network(8, 8, 0.85, 4, seed));
        let app = apir::apps::bfs::build(g, root, apir::apps::bfs::BfsVariant::Spec);
        let fab = Fabric::new(&app.spec, &app.input, FabricConfig::default()).run().unwrap();
        prop_assert!((app.check)(&fab.mem_image).is_ok());
    }

    /// Commutative fetch-and-add workloads give identical images on the
    /// fabric regardless of configuration.
    #[test]
    fn fabric_faa_deterministic(npipes in 1usize..4, banks in 1usize..4) {
        let mut s = Spec::new("faa");
        let r = s.region("acc", 16);
        let ts = s.task_set("t", TaskSetKind::ForAll, 1, &["i"]);
        let mut b = s.body(ts);
        let i = b.field(0);
        let one = b.konst(1);
        b.store(r, i, one, apir::core::op::StoreKind::Add, None);
        b.finish();
        let s = s.build().unwrap();
        let mut input = ProgramInput::new(&s);
        for k in 0..64u64 {
            input.seed(&s, ts, &[k % 16]);
        }
        let cfg = FabricConfig {
            pipelines_per_set: npipes,
            queue_banks: banks,
            ..FabricConfig::default()
        };
        let fab = Fabric::new(&s, &input, cfg).run().unwrap();
        for c in 0..16u64 {
            prop_assert_eq!(fab.mem_image.read(apir::core::spec::RegionId(0), c), 4);
        }
    }
}
