//! Property-based tests (apir-util's seeded harness) on core invariants.

use apir::core::index::IndexTuple;
use apir::core::interp::SeqInterp;
use apir::core::op::AluOp;
use apir::core::spec::{Spec, TaskSetKind};
use apir::core::{MemAccess, ProgramInput};
use apir::fabric::{Fabric, FabricConfig};
use apir::runtime::{ParConfig, ParRunner};
use apir::sim::bandwidth::BandwidthMeter;
use apir::sim::fifo::Fifo;
use apir::workloads::gen;
use apir::workloads::unionfind::{FlatUnionFind, UnionFind};
use apir_util::props;

props! {
    cases = 64;

    /// The well-order is total and consistent with lexicographic tuples.
    fn index_order_is_lexicographic(g) {
        let a = g.vec(0usize..4, |g| g.gen_range(0u64..100));
        let b = g.vec(0usize..4, |g| g.gen_range(0u64..100));
        let ia = IndexTuple::new(&a);
        let ib = IndexTuple::new(&b);
        // Pad to MAX_DEPTH manually and compare.
        let pad = |v: &[u64]| {
            let mut p = [0u64; 4];
            p[..v.len()].copy_from_slice(v);
            p
        };
        assert_eq!(ia.cmp(&ib), pad(&a).cmp(&pad(&b)));
    }

    /// Children always order at-or-after their parent.
    fn children_never_precede_parent(g) {
        let parent = g.vec(1usize..3, |g| g.gen_range(0u64..50));
        let level_off = g.gen_range(0usize..2);
        let ord = g.gen_range(0u64..50);
        let p = IndexTuple::new(&parent);
        let level = parent.len() + level_off;
        if level >= 1 && level <= 4 {
            let c = p.child(level, ord);
            assert!(p <= c || level <= parent.len(),
                "parent {p:?} child {c:?}");
        }
    }

    /// FIFO preserves order and never loses or duplicates elements.
    fn fifo_preserves_order(g) {
        let ops = g.vec(1usize..200, |g| g.gen_range(0u32..3));
        let mut f: Fifo<u64> = Fifo::new(16);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut staged: std::collections::VecDeque<u64> = Default::default();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 => {
                    if f.try_push(next) {
                        staged.push_back(next);
                    }
                    next += 1;
                }
                1 => {
                    let got = f.pop();
                    assert_eq!(got, model.pop_front());
                }
                _ => {
                    f.commit();
                    model.append(&mut staged);
                }
            }
        }
    }

    /// The bandwidth meter never exceeds its configured rate over time.
    fn bandwidth_never_exceeds_rate(g) {
        let rate = g.gen_range(1.0f64..64.0);
        let req = g.gen_range(1u64..128);
        let mut m = BandwidthMeter::new(rate);
        let mut moved = 0u64;
        let cycles = 500u64;
        for _ in 0..cycles {
            m.tick();
            while m.try_consume(req) {
                moved += req;
            }
        }
        // Allow the burst window on top of the sustained rate.
        assert!(moved as f64 <= rate * cycles as f64 + rate * 4.0 + req as f64);
    }

    /// Flat union-find partitions match the classic structure under any
    /// union sequence.
    fn union_find_equivalence(g) {
        let edges = g.vec(0usize..64, |g| {
            (g.gen_range(0u32..32), g.gen_range(0u32..32))
        });
        let mut classic = UnionFind::new(32);
        let mut arr = vec![0u64; 32];
        FlatUnionFind::init(&mut arr);
        let mut flat = FlatUnionFind::new(&mut arr);
        for (a, b) in edges {
            assert_eq!(classic.union(a, b), flat.union(a as u64, b as u64));
        }
        for i in 0..32u32 {
            for j in (i + 1)..32u32 {
                assert_eq!(classic.same(i, j), flat.find(i as u64) == flat.find(j as u64));
            }
        }
    }

    /// The round-based software runtime is sequentially consistent for an
    /// arbitrary mix of read-modify-write tasks.
    fn software_runtime_matches_interpreter(g) {
        let cells = g.vec(1usize..40, |g| g.gen_range(0u64..6));
        let width = g.gen_range(1usize..16);
        let mut s = Spec::new("prop");
        let r = s.region("cells", 8);
        let ts = s.task_set("t", TaskSetKind::ForEach, 1, &["cell"]);
        let mut b = s.body(ts);
        let cell = b.field(0);
        let old = b.load(r, cell);
        let three = b.konst(3);
        let new = b.alu(AluOp::Mul, old, three);
        let one = b.konst(1);
        let new1 = b.alu(AluOp::Add, new, one);
        b.store_plain(r, cell, new1);
        b.finish();
        let s = s.build().unwrap();
        let mut input = ProgramInput::new(&s);
        for c in &cells {
            input.seed(&s, ts, &[*c]);
        }
        let seq = SeqInterp::run(&s, &input).unwrap();
        let par = ParRunner::run(&s, &input, ParConfig { width, max_steps: 100_000 }).unwrap();
        assert!(par.mem.diff(&seq.mem, 3).is_empty());
    }
}

props! {
    // Fabric runs are expensive; fewer cases.
    cases = 8;

    /// SPEC-BFS levels are correct on random road networks for any seed
    /// and root.
    fn fabric_bfs_correct_on_random_inputs(g) {
        let seed = g.gen_range(0u64..1000);
        let root = g.gen_range(0u32..64);
        let graph = std::sync::Arc::new(gen::road_network(8, 8, 0.85, 4, seed));
        let app = apir::apps::bfs::build(graph, root, apir::apps::bfs::BfsVariant::Spec);
        let fab = Fabric::new(&app.spec, &app.input, FabricConfig::default()).run().unwrap();
        assert!((app.check)(&fab.mem_image).is_ok());
    }

    /// Conservation invariants of the observability layer, for any input
    /// seed and pipeline/bank mix:
    ///  * at quiescence, every task ever pushed has retired (squashed
    ///    tokens still flow to the pipeline tail and retire, so squashes
    ///    are a subset of retirements, not an extra term);
    ///  * every pipeline stage's activity tracker accounts for exactly
    ///    busy + stall + idle == cycles;
    ///  * every occupancy histogram has one observation per cycle, and
    ///    its bucket counts sum to its observation count;
    ///  * trace record cycles are monotone non-decreasing.
    fn fabric_conservation_invariants(g) {
        use apir::sim::metrics::MetricValue;
        let seed = g.gen_range(0u64..1000);
        let npipes = g.gen_range(1usize..3);
        let banks = g.gen_range(1usize..4);
        let variant = if g.gen_bool(0.5) {
            apir::apps::bfs::BfsVariant::Spec
        } else {
            apir::apps::bfs::BfsVariant::Coor
        };
        let graph = std::sync::Arc::new(gen::road_network(6, 6, 0.85, 4, seed));
        let app = apir::apps::bfs::build(graph, 0, variant);
        let cfg = FabricConfig {
            pipelines_per_set: npipes,
            queue_banks: banks,
            trace_capacity: 1 << 14,
            ..FabricConfig::default()
        };
        let r = Fabric::new(&app.spec, &app.input, cfg).run().unwrap();
        let pushed: u64 = r
            .metrics
            .entries()
            .iter()
            .filter(|(k, _)| k.starts_with("queue.") && k.ends_with(".pushed"))
            .map(|(k, _)| r.metrics.counter(k).unwrap())
            .sum();
        assert_eq!(pushed, r.total_retired(), "pushed vs retired at quiescence");
        assert!(r.squashes <= r.total_retired(), "squash is a kind of retire");
        for (name, t) in r.activity.rows() {
            assert_eq!(t.total(), r.cycles, "stage {name} misses cycles");
        }
        for (k, v) in r.metrics.entries() {
            if let MetricValue::Histogram(h) = v {
                let bucket_sum: u64 = h.nonzero_buckets().map(|(_, n)| n).sum();
                assert_eq!(h.count(), bucket_sum, "{k}: bucket sum");
                assert_eq!(h.count(), r.cycles, "{k}: one observation per cycle");
            }
        }
        let trace = r.trace.as_ref().expect("tracing enabled");
        let mut last = 0u64;
        for rec in trace.records() {
            assert!(rec.cycle >= last, "trace went backwards");
            last = rec.cycle;
        }
    }

    /// Stall attribution is a partition, for any pipeline/bank mix, with
    /// and without a chaos campaign:
    ///  * every pipeline stage's per-cause stall counts sum exactly to
    ///    its stall total (no stall is uncaused or double-counted);
    ///  * every `<comp>.stall` counter in the snapshot equals the sum of
    ///    its `<comp>.stall.<cause>` sub-counters;
    ///  * the timeline block covers the run exactly: window cycles sum
    ///    to the run length, stage-cycles to stages × cycles, and
    ///    retirements to the retired total.
    fn stall_causes_partition_stalls(g) {
        use apir::sim::metrics::MetricValue;
        let seed = g.gen_range(0u64..1000);
        let npipes = g.gen_range(1usize..3);
        let banks = g.gen_range(1usize..4);
        let graph = std::sync::Arc::new(gen::road_network(6, 6, 0.85, 4, seed));
        let app = apir::apps::bfs::build(graph, 0, apir::apps::bfs::BfsVariant::Spec);
        let mut cfg = FabricConfig {
            pipelines_per_set: npipes,
            queue_banks: banks,
            timeline_window: g.gen_range(8u64..128),
            timeline_capacity: 1 << 20,
            ..FabricConfig::default()
        };
        if g.gen_bool(0.5) {
            cfg.faults = apir::fabric::FaultConfig::chaos(seed);
        }
        let r = Fabric::new(&app.spec, &app.input, cfg).run().unwrap();
        for (name, t) in r.activity.rows() {
            let by_cause: u64 = t.stall_causes().map(|(_, n)| n).sum();
            assert_eq!(t.stall, by_cause, "stage {name}: causes must partition stalls");
        }
        for (k, v) in r.metrics.entries() {
            let MetricValue::Counter(total) = v else { continue };
            if !k.ends_with(".stall") {
                continue;
            }
            let prefix = format!("{k}.");
            let by_cause: u64 = r
                .metrics
                .entries()
                .iter()
                .filter(|(k2, _)| k2.starts_with(&prefix))
                .map(|(k2, _)| r.metrics.counter(k2).unwrap())
                .sum();
            assert_eq!(*total, by_cause, "{k}: causes must partition stalls");
        }
        let tl = r.timeline.as_ref().expect("timeline enabled");
        assert_eq!(tl.dropped, 0, "ring sized for the whole run");
        assert_eq!(
            tl.windows.iter().map(|w| w.cycles).sum::<u64>(),
            r.cycles,
            "windows cover the run"
        );
        let stage_cycles: u64 = tl
            .windows
            .iter()
            .map(|w| w.sample.busy + w.sample.stall + w.sample.idle)
            .sum();
        assert_eq!(
            stage_cycles,
            r.cycles * r.primitive_ops as u64,
            "every stage accounted every cycle"
        );
        assert_eq!(
            tl.windows.iter().map(|w| w.sample.retired).sum::<u64>(),
            r.total_retired(),
            "windowed retirements sum to the total"
        );
    }

    /// Under a seeded fault storm the observability layer keeps its
    /// books: the trace ring's conservation invariant holds (records
    /// emitted == retained + dropped — fault events multiply trace volume
    /// but must never be lost silently), and the metrics snapshot stays
    /// key-sorted with the `fault.*` family interleaved.
    fn fault_storm_keeps_trace_and_metric_invariants(g) {
        let seed = g.gen_range(0u64..1000);
        let cap = g.gen_range(64usize..2048);
        let graph = std::sync::Arc::new(gen::road_network(6, 6, 0.85, 4, seed));
        let app = apir::apps::bfs::build(graph, 0, apir::apps::bfs::BfsVariant::Spec);
        let mut cfg = FabricConfig {
            trace_capacity: cap,
            ..FabricConfig::default()
        };
        cfg.faults = apir::fabric::FaultConfig::chaos(seed);
        let r = Fabric::new(&app.spec, &app.input, cfg).run().unwrap();
        assert!((app.check)(&r.mem_image).is_ok());
        let t = r.trace.as_ref().expect("tracing enabled");
        assert_eq!(
            t.emitted(),
            t.len() as u64 + t.dropped(),
            "trace ring lost records"
        );
        let keys: Vec<&str> = r.metrics.entries().iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "metrics snapshot is not key-sorted");
        assert!(
            keys.iter().any(|k| k.starts_with("fault.")),
            "fault.* keys missing from the snapshot"
        );
    }

    /// The static occupancy bounds (`apir_core::check::analysis`) are
    /// sound: for random fabric geometry (pipelines, banks, capacity,
    /// LSU window), with and without a chaos fault campaign, the
    /// observed peak occupancy of every queue stays at or under the
    /// analysis bound. Geometries the analysis itself condemns
    /// (error-level APIR6xx, e.g. a starved recirculation reserve) are
    /// rejected by `Fabric::new` — the other half of the contract.
    fn occupancy_bounds_are_sound(g) {
        let seed = g.gen_range(0u64..1000);
        let npipes = g.gen_range(1usize..5);
        let banks = g.gen_range(1usize..5);
        let capacity = g.gen_range(256usize..2048);
        let lsu = g.gen_range(4usize..32);
        let variant = if g.gen_bool(0.5) {
            apir::apps::bfs::BfsVariant::Spec
        } else {
            apir::apps::bfs::BfsVariant::Coor
        };
        let graph = std::sync::Arc::new(gen::road_network(6, 6, 0.85, 4, seed));
        let app = apir::apps::bfs::build(graph, 0, variant);
        let mut cfg = FabricConfig {
            pipelines_per_set: npipes,
            queue_banks: banks,
            queue_capacity: capacity,
            lsu_window: lsu,
            ..FabricConfig::default()
        };
        if g.gen_bool(0.5) {
            cfg.faults = apir::fabric::FaultConfig::chaos(seed);
        }
        let analysis = apir::fabric::analyze_config(&cfg, &app.spec, &app.input)
            .expect("builtin specs lower");
        match Fabric::new(&app.spec, &app.input, cfg.clone()).run() {
            Ok(r) => {
                for (i, q) in analysis.queues.iter().enumerate() {
                    let peak = r.queue_peaks[i] as u64;
                    assert!(
                        peak <= q.bound,
                        "queue `{}` peak {peak} exceeds static bound {} \
                         (pipes={npipes} banks={banks} cap={capacity} lsu={lsu})",
                        q.task_set, q.bound
                    );
                }
            }
            Err(_) => {
                assert!(
                    analysis.report.has_errors() || cfg.validate().has_errors(),
                    "fabric rejected a config the static analysis accepted"
                );
            }
        }

        // Finite-demand side: a seed-only spec (no enqueues) gets an
        // exact bound — the seed count — and the fabric never tops it.
        let mut s = Spec::new("faa");
        let r = s.region("acc", 16);
        let ts = s.task_set("t", TaskSetKind::ForAll, 1, &["i"]);
        let mut b = s.body(ts);
        let i = b.field(0);
        let one = b.konst(1);
        b.store(r, i, one, apir::core::op::StoreKind::Add, None);
        b.finish();
        let s = s.build().unwrap();
        let nseeds = g.gen_range(1u64..128);
        let mut input = ProgramInput::new(&s);
        for k in 0..nseeds {
            input.seed(&s, ts, &[k % 16]);
        }
        let analysis = apir::fabric::analyze_config(&cfg, &s, &input)
            .expect("trivial spec lowers");
        let q = &analysis.queues[0];
        assert!(!q.widened, "seed-only spec must get a finite bound");
        let run = Fabric::new(&s, &input, cfg).run().unwrap();
        assert!(
            run.queue_peaks[0] as u64 <= q.bound,
            "faa peak {} exceeds finite bound {} ({nseeds} seeds)",
            run.queue_peaks[0], q.bound
        );
    }

    /// Commutative fetch-and-add workloads give identical images on the
    /// fabric regardless of configuration.
    fn fabric_faa_deterministic(g) {
        let npipes = g.gen_range(1usize..4);
        let banks = g.gen_range(1usize..4);
        let mut s = Spec::new("faa");
        let r = s.region("acc", 16);
        let ts = s.task_set("t", TaskSetKind::ForAll, 1, &["i"]);
        let mut b = s.body(ts);
        let i = b.field(0);
        let one = b.konst(1);
        b.store(r, i, one, apir::core::op::StoreKind::Add, None);
        b.finish();
        let s = s.build().unwrap();
        let mut input = ProgramInput::new(&s);
        for k in 0..64u64 {
            input.seed(&s, ts, &[k % 16]);
        }
        let cfg = FabricConfig {
            pipelines_per_set: npipes,
            queue_banks: banks,
            ..FabricConfig::default()
        };
        let fab = Fabric::new(&s, &input, cfg).run().unwrap();
        for c in 0..16u64 {
            assert_eq!(fab.mem_image.read(apir::core::spec::RegionId(0), c), 4);
        }
    }
}
