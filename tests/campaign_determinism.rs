//! The campaign merge contract: the record stream of a plan is a pure
//! function of the plan. Running `tests/plans/determinism.json` — which
//! deliberately includes a failing config (`boom`, `max_cycles: 64` ⇒
//! every cell dies with a `max_cycles` error) — on 1, 2, and 8 worker
//! threads must produce byte-identical JSONL, failures included. That
//! is what lets `scripts/verify.sh` gate campaign output with a plain
//! byte comparison and lets results files live in version control.

use apir::campaign::{parse_plan, run_campaign, CampaignPlan, CampaignSummary};
use apir::util::jsonl::parse_jsonl;
use apir::util::Json;

fn committed_plan() -> CampaignPlan {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/plans/determinism.json"
    ))
    .expect("committed determinism plan");
    parse_plan(&text).expect("valid plan")
}

/// Runs the plan and returns the merged JSONL bytes plus the summary.
fn merged_jsonl(plan: &CampaignPlan, threads: usize, inflight: usize) -> (String, CampaignSummary) {
    let mut out = String::new();
    let summary = run_campaign(plan, threads, inflight, |r| {
        out.push_str(&r.render());
        out.push('\n');
    });
    (out, summary)
}

#[test]
fn merged_stream_is_byte_identical_across_thread_counts() {
    let plan = committed_plan();
    let (one, s1) = merged_jsonl(&plan, 1, 4);
    let (two, s2) = merged_jsonl(&plan, 2, 4);
    let (eight, s8) = merged_jsonl(&plan, 8, 4);

    assert_eq!(one, two, "2-thread merge diverged from 1-thread");
    assert_eq!(one, eight, "8-thread merge diverged from 1-thread");

    // The plan fails half its cells mid-campaign (the `boom` config) —
    // the failure records must be as deterministic as the successes.
    assert_eq!(s1.jobs, plan.cells() as u64);
    assert_eq!(s1.failed, (plan.cells() / 2) as u64);
    assert_eq!((s2.jobs, s2.failed), (s1.jobs, s1.failed));
    assert_eq!((s8.jobs, s8.failed), (s1.jobs, s1.failed));
}

#[test]
fn merged_stream_interleaves_ok_and_error_records_in_key_order() {
    let plan = committed_plan();
    let (text, _) = merged_jsonl(&plan, 8, 4);
    let records = parse_jsonl(&text).expect("every line is valid JSON");
    assert_eq!(records.len(), plan.cells());

    // Records arrive sorted by (app, config, seed) — the merge key —
    // regardless of which worker finished which cell first.
    let keys: Vec<(String, String, u64)> = records
        .iter()
        .map(|r| {
            (
                r.get("app").unwrap().as_str().unwrap().to_string(),
                r.get("config").unwrap().as_str().unwrap().to_string(),
                r.get("seed").unwrap().as_u64().unwrap(),
            )
        })
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted, "records out of merge-key order");
    sorted.dedup();
    assert_eq!(sorted.len(), records.len(), "duplicate cell records");

    for r in &records {
        let config = r.get("config").unwrap().as_str().unwrap();
        let status = r.get("status").unwrap().as_str().unwrap();
        match config {
            // `boom` pins max_cycles far below any real run: every cell
            // fails, structurally, at the same cycle.
            "boom" => {
                assert_eq!(status, "error");
                let e = r.get("error").unwrap();
                assert_eq!(e.get("kind").unwrap().as_str(), Some("max_cycles"));
                assert_eq!(e.get("cycle").unwrap().as_u64(), Some(64));
                // Error records embed the partial report, stamped with
                // where the run died — the campaign-side view of
                // `FabricError::partial_report_json()`.
                let report = r.get("report").expect("error records embed the partial report");
                let t = report.get("terminated").expect("terminated stamp");
                assert_eq!(t.get("kind").unwrap().as_str(), Some("max_cycles"));
                assert_eq!(t.get("cycle").unwrap().as_u64(), Some(64));
            }
            "base" => {
                assert_eq!(status, "ok");
                let report = r.get("report").unwrap();
                assert_eq!(
                    report.get("schema").and_then(Json::as_str),
                    Some("apir.fabric.report.v2")
                );
                assert!(r.get("error").is_none(), "ok records carry no error");
            }
            other => panic!("unexpected config `{other}`"),
        }
    }
}

#[test]
fn tight_inflight_window_does_not_change_the_bytes() {
    // The reorder buffer's capacity bounds memory, not meaning: the
    // minimum window (1) must still merge the same bytes as a roomy one.
    let plan = committed_plan();
    let (tight, st) = merged_jsonl(&plan, 8, 1);
    let (roomy, _) = merged_jsonl(&plan, 8, 64);
    assert_eq!(tight, roomy);
    assert!(st.peak_inflight <= 1, "cap 1 violated: {}", st.peak_inflight);
}
