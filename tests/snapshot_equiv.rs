//! Restore-equivalence: snapshotting a paused fabric at cycle N and
//! resuming from the document must finish byte-identically — the same
//! `to_json()` report — as the uninterrupted run, for every builtin
//! app, fault-free and under pinned chaos seeds, on both the
//! event-wheel scheduler and the dense per-cycle oracle. This is the
//! contract that makes checkpoints trustworthy: a restored run is
//! *provably* the run it resumed.

use apir::bench::experiments::{scale_cache, synthesized_cfg};
use apir::bench::scale::{build_app, AppInstance, APP_NAMES};
use apir::bench::Scale;
use apir::fabric::{Fabric, FabricConfig, FaultConfig, RunSplit};
use apir_util::props;

fn app_cfg(name: &str, fault_seed: Option<u64>, dense: bool) -> (AppInstance, FabricConfig) {
    let app = build_app(name, Scale::Tiny);
    let mut cfg = synthesized_cfg(name, Scale::Tiny);
    if let Some(seed) = fault_seed {
        cfg.faults = FaultConfig::chaos(seed);
    }
    cfg.dense_tick = dense;
    scale_cache(&mut cfg, &app.input);
    (app.tune)(&mut cfg);
    (app, cfg)
}

/// The uninterrupted run's report JSON (and its cycle count, for
/// picking interesting split points).
fn uninterrupted(name: &str, fault_seed: Option<u64>, dense: bool) -> (String, u64) {
    let (app, cfg) = app_cfg(name, fault_seed, dense);
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .unwrap_or_else(|e| panic!("{name}: uninterrupted run failed: {e}"));
    (app.check)(&report.mem_image).unwrap_or_else(|e| panic!("{name}: bad image: {e}"));
    (report.to_json(), report.cycles)
}

/// Pause at `at`, snapshot, restore into a *fresh* fabric, finish, and
/// return the report JSON. A run that completes before `at` returns its
/// report directly (split-at-N degenerates to the uninterrupted run).
fn split_at(name: &str, fault_seed: Option<u64>, dense: bool, at: u64) -> String {
    let (app, cfg) = app_cfg(name, fault_seed, dense);
    let split = Fabric::new(&app.spec, &app.input, cfg.clone())
        .run_until(at)
        .unwrap_or_else(|e| panic!("{name}: run to cycle {at} failed: {e}"));
    let report = match split {
        RunSplit::Done(report) => *report,
        RunSplit::Paused(fabric) => {
            let doc = fabric.snapshot();
            drop(fabric);
            Fabric::restore(&app.spec, &app.input, cfg, &doc)
                .unwrap_or_else(|e| panic!("{name}: restore at {at} rejected: {e}"))
                .run()
                .unwrap_or_else(|e| panic!("{name}: resumed run failed: {e}"))
        }
    };
    (app.check)(&report.mem_image)
        .unwrap_or_else(|e| panic!("{name}: resumed image is bad: {e}"));
    report.to_json()
}

/// Splits the app at cycle 0 (before the first tick), at 1 (one tick
/// in), mid-run, and one cycle short of the end; each resumed report
/// must match the uninterrupted bytes. `at = cycles - 1` usually lands
/// inside the final quiescent stretch, so the event wheel's jump
/// overshoots the target — the pause-past-a-quiescent-skip boundary.
fn check_restore_equivalence(name: &str, fault_seed: Option<u64>, dense: bool) {
    let (want, cycles) = uninterrupted(name, fault_seed, dense);
    for at in [0, 1, cycles / 2, cycles.saturating_sub(1)] {
        let got = split_at(name, fault_seed, dense, at);
        assert_eq!(
            got, want,
            "{name} (faults {fault_seed:?}, dense {dense}): split at cycle {at} diverged"
        );
    }
}

#[test]
fn spec_bfs_restores_byte_identically() {
    check_restore_equivalence("SPEC-BFS", None, false);
    check_restore_equivalence("SPEC-BFS", Some(5), false);
}

#[test]
fn coor_bfs_restores_byte_identically() {
    check_restore_equivalence("COOR-BFS", None, false);
    check_restore_equivalence("COOR-BFS", Some(5), false);
}

#[test]
fn spec_sssp_restores_byte_identically() {
    check_restore_equivalence("SPEC-SSSP", None, false);
    check_restore_equivalence("SPEC-SSSP", Some(5), false);
}

#[test]
fn spec_mst_restores_byte_identically() {
    check_restore_equivalence("SPEC-MST", None, false);
    check_restore_equivalence("SPEC-MST", Some(5), false);
}

#[test]
fn spec_dmr_restores_byte_identically() {
    check_restore_equivalence("SPEC-DMR", None, false);
    check_restore_equivalence("SPEC-DMR", Some(5), false);
}

#[test]
fn coor_lu_restores_byte_identically() {
    check_restore_equivalence("COOR-LU", None, false);
    check_restore_equivalence("COOR-LU", Some(5), false);
}

#[test]
fn dense_tick_oracle_restores_byte_identically() {
    // The dense per-cycle loop shares the snapshot format; a restored
    // dense run must match its own uninterrupted bytes too.
    check_restore_equivalence("SPEC-BFS", None, true);
    check_restore_equivalence("SPEC-BFS", Some(5), true);
}

#[test]
fn snapshot_doc_carries_the_versioned_schema() {
    let (app, cfg) = app_cfg("SPEC-BFS", None, false);
    let RunSplit::Paused(fabric) = Fabric::new(&app.spec, &app.input, cfg)
        .run_until(100)
        .unwrap()
    else {
        panic!("SPEC-BFS runs longer than 100 cycles");
    };
    let doc = fabric.snapshot();
    assert_eq!(
        doc.get("schema").and_then(apir_util::Json::as_str),
        Some("apir.fabric.snapshot.v1")
    );
    // The document round-trips through the strict parser.
    let text = doc.render();
    assert_eq!(apir_util::json::parse(&text).unwrap().render(), text);
}

props! {
    // Full fabric runs per case; keep the count modest.
    cases = 6;

    /// snapshot -> restore -> snapshot is a fixed point: restoring a
    /// document and immediately re-snapshotting reproduces it
    /// byte-for-byte, for random apps, fault seeds, and split cycles.
    fn snapshot_restore_snapshot_is_a_fixed_point(g) {
        let name = APP_NAMES[g.gen_range(0usize..APP_NAMES.len())];
        let fault_seed = if g.gen_bool(0.5) {
            Some(g.gen_range(0u64..1000))
        } else {
            None
        };
        let at = g.gen_range(0u64..600);
        let (app, cfg) = app_cfg(name, fault_seed, false);
        match Fabric::new(&app.spec, &app.input, cfg.clone()).run_until(at).unwrap() {
            // The run ended before `at`: nothing to snapshot this case.
            RunSplit::Done(_) => {}
            RunSplit::Paused(fabric) => {
                let doc = fabric.snapshot();
                let restored = Fabric::restore(&app.spec, &app.input, cfg, &doc)
                    .expect("own snapshot restores");
                assert_eq!(
                    restored.snapshot().render(),
                    doc.render(),
                    "{name} at {at} (faults {fault_seed:?})"
                );
            }
        }
    }
}
