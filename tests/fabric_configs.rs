//! Configuration-space robustness: the accelerators must stay *correct*
//! under arbitrary template parameters — performance is the only thing
//! parameters may change. These tests sweep the corners of the MoA
//! parameter space that the synthesis heuristic might visit.

use apir::apps::{bfs, sssp};
use apir::fabric::{FabricConfig, Fabric};
use apir::workloads::gen;
use proptest::prelude::*;
use std::sync::Arc;

fn run_bfs(cfg: FabricConfig, variant: bfs::BfsVariant, seed: u64) -> Result<(), String> {
    let g = Arc::new(gen::road_network(7, 7, 0.88, 4, seed));
    let app = bfs::build(g, 0, variant);
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .map_err(|e| e.to_string())?;
    (app.check)(&report.mem_image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// SPEC-BFS is correct for any sampled template-parameter corner.
    #[test]
    fn spec_bfs_correct_across_config_space(
        pipes in 1usize..5,
        lanes in 1usize..32,
        lsu in 1usize..16,
        banks in 1usize..5,
        bus in 1usize..6,
        timeout in 64u64..2048,
        seed in 0u64..50,
    ) {
        let cfg = FabricConfig {
            pipelines_per_set: pipes,
            rule_lanes: lanes,
            lsu_window: lsu,
            rendezvous_window: lsu.max(2),
            queue_banks: banks,
            event_bus_width: bus,
            rendezvous_timeout: timeout,
            queue_capacity: 4096,
            ..FabricConfig::default()
        };
        prop_assert!(run_bfs(cfg, bfs::BfsVariant::Spec, seed).is_ok());
    }

    /// COOR-BFS (waiting rule, wavefront release) likewise.
    #[test]
    fn coor_bfs_correct_across_config_space(
        pipes in 1usize..4,
        lanes in 1usize..16,
        timeout in 64u64..1024,
        seed in 0u64..50,
    ) {
        let cfg = FabricConfig {
            pipelines_per_set: pipes,
            rule_lanes: lanes,
            rendezvous_timeout: timeout,
            queue_capacity: 4096,
            ..FabricConfig::default()
        };
        prop_assert!(run_bfs(cfg, bfs::BfsVariant::Coor, seed).is_ok());
    }

    /// SSSP under random memory-system parameters (bandwidth, latency,
    /// cache size, MSHRs) — timing model changes must never change the
    /// computed distances.
    #[test]
    fn sssp_correct_across_memory_space(
        gbps in 1u32..30,
        cache_kb in 1usize..64,
        mshr in 1usize..64,
        hit_lat in 1u64..30,
        seed in 0u64..50,
    ) {
        let mut cfg = FabricConfig::default();
        cfg.mem.qpi_gbps = gbps as f64;
        cfg.mem.cache_kb = cache_kb;
        cfg.mem.max_inflight_misses = mshr;
        cfg.mem.hit_latency = hit_lat;
        let g = Arc::new(gen::road_network(6, 6, 0.9, 8, seed));
        let app = sssp::build(g, 0);
        let report = Fabric::new(&app.spec, &app.input, cfg)
            .run()
            .map_err(|e| e.to_string());
        prop_assert!(report.is_ok(), "{report:?}");
        prop_assert!((app.check)(&report.unwrap().mem_image).is_ok());
    }
}
