//! Configuration-space robustness: the accelerators must stay *correct*
//! under arbitrary template parameters — performance is the only thing
//! parameters may change. These tests sweep the corners of the MoA
//! parameter space that the synthesis heuristic might visit.

use apir::apps::{bfs, sssp};
use apir::fabric::{Fabric, FabricConfig};
use apir::workloads::gen;
use apir_util::props;
use std::sync::Arc;

fn run_bfs(cfg: FabricConfig, variant: bfs::BfsVariant, seed: u64) -> Result<(), String> {
    let g = Arc::new(gen::road_network(7, 7, 0.88, 4, seed));
    let app = bfs::build(g, 0, variant);
    let report = Fabric::new(&app.spec, &app.input, cfg)
        .run()
        .map_err(|e| e.to_string())?;
    (app.check)(&report.mem_image)
}

props! {
    cases = 12;

    /// SPEC-BFS is correct for any sampled template-parameter corner.
    fn spec_bfs_correct_across_config_space(g) {
        let pipes = g.gen_range(1usize..5);
        let lanes = g.gen_range(1usize..32);
        let lsu = g.gen_range(1usize..16);
        let banks = g.gen_range(1usize..5);
        let bus = g.gen_range(1usize..6);
        let timeout = g.gen_range(64u64..2048);
        let seed = g.gen_range(0u64..50);
        let cfg = FabricConfig {
            pipelines_per_set: pipes,
            rule_lanes: lanes,
            lsu_window: lsu,
            rendezvous_window: lsu.max(2),
            queue_banks: banks,
            event_bus_width: bus,
            rendezvous_timeout: timeout,
            queue_capacity: 4096,
            ..FabricConfig::default()
        };
        assert!(run_bfs(cfg, bfs::BfsVariant::Spec, seed).is_ok());
    }

    /// COOR-BFS (waiting rule, wavefront release) likewise.
    fn coor_bfs_correct_across_config_space(g) {
        let pipes = g.gen_range(1usize..4);
        let lanes = g.gen_range(1usize..16);
        let timeout = g.gen_range(64u64..1024);
        let seed = g.gen_range(0u64..50);
        let cfg = FabricConfig {
            pipelines_per_set: pipes,
            rule_lanes: lanes,
            rendezvous_timeout: timeout,
            queue_capacity: 4096,
            ..FabricConfig::default()
        };
        assert!(run_bfs(cfg, bfs::BfsVariant::Coor, seed).is_ok());
    }

    /// SSSP under random memory-system parameters (bandwidth, latency,
    /// cache size, MSHRs) — timing model changes must never change the
    /// computed distances.
    fn sssp_correct_across_memory_space(g) {
        let gbps = g.gen_range(1u32..30);
        let cache_kb = g.gen_range(1usize..64);
        let mshr = g.gen_range(1usize..64);
        let hit_lat = g.gen_range(1u64..30);
        let seed = g.gen_range(0u64..50);
        let mut cfg = FabricConfig::default();
        cfg.mem.qpi_gbps = gbps as f64;
        cfg.mem.cache_kb = cache_kb;
        cfg.mem.max_inflight_misses = mshr;
        cfg.mem.hit_latency = hit_lat;
        let graph = Arc::new(gen::road_network(6, 6, 0.9, 8, seed));
        let app = sssp::build(graph, 0);
        let report = Fabric::new(&app.spec, &app.input, cfg)
            .run()
            .map_err(|e| e.to_string());
        assert!(report.is_ok(), "{report:?}");
        assert!((app.check)(&report.unwrap().mem_image).is_ok());
    }
}
