//! Golden tests for the semantic analysis pass (`APIR6xx`): the full
//! verdict set per builtin app, the static-vs-dynamic bottleneck
//! validation, and byte-determinism of the `apir.analysis.report.v1`
//! document against the committed `ANALYSIS_baseline.json`.

use apir::bench::Scale;
use apir::check::{analyze_instance, builtin_instances};
use apir::trace::{analysis_report, validate_analysis};

/// The complete `(code, entity)` verdict sequence per builtin app under
/// the `apir-lint --analyze` path (default fabric config + the app's
/// tuning hook). Any analysis change that moves a verdict must update
/// this table deliberately.
#[test]
fn builtin_verdict_sets_are_pinned() {
    let expected: &[(&str, &[(&str, &str)])] = &[
        (
            "SPEC-BFS",
            &[
                ("APIR604", "queue:update"),
                ("APIR604", "queue:visit"),
                ("APIR611", "actor:1"),
            ],
        ),
        (
            "COOR-BFS",
            &[
                ("APIR604", "queue:update"),
                ("APIR604", "queue:visit"),
                ("APIR611", "actor:1"),
            ],
        ),
        (
            "SPEC-SSSP",
            &[
                ("APIR604", "queue:expand"),
                ("APIR604", "queue:relax"),
                ("APIR611", "actor:1"),
            ],
        ),
        (
            "SPEC-MST",
            &[
                ("APIR604", "queue:edge"),
                ("APIR601", "queue:edge"),
                ("APIR611", "actor:1"),
            ],
        ),
        (
            "SPEC-DMR",
            &[("APIR604", "queue:badtri"), ("APIR611", "actor:1")],
        ),
        ("COOR-LU", &[("APIR604", "queue:lutask")]),
    ];
    let apps = builtin_instances();
    assert_eq!(apps.len(), expected.len());
    for (app, (name, verdicts)) in apps.iter().zip(expected) {
        assert_eq!(&app.name, name);
        let a = analyze_instance(app);
        let got: Vec<(String, String)> = a
            .report
            .diagnostics()
            .iter()
            .map(|d| (d.lint.code().to_string(), d.entity.clone()))
            .collect();
        let want: Vec<(String, String)> = verdicts
            .iter()
            .map(|(c, e)| (c.to_string(), e.to_string()))
            .collect();
        assert_eq!(got, want, "{name}: verdict set moved:\n{}", a.report.render_text());
        assert!(!a.report.has_errors(), "{name}: builtins stay error-free");
    }
}

/// The headline validation contract, pinned per app: the statically
/// predicted dominant stall cause equals the measured `fabric.stall.*`
/// top cause on the synthesized baseline fabric, and every measured
/// peak queue occupancy respects its static bound. BFS must come out
/// memory-latency-bound (`miss_outstanding`), matching the paper's
/// narrative; MST's waiting rendezvous makes it backpressure-bound.
#[test]
fn predicted_dominant_cause_matches_measured() {
    let expected = [
        ("SPEC-BFS", "miss_outstanding"),
        ("COOR-BFS", "miss_outstanding"),
        ("SPEC-SSSP", "miss_outstanding"),
        ("SPEC-MST", "downstream_full"),
        ("SPEC-DMR", "miss_outstanding"),
        ("COOR-LU", "miss_outstanding"),
    ];
    for (name, cause) in expected {
        let v = validate_analysis(name, Scale::Tiny);
        assert!(
            v.ok(),
            "{name}: static analysis contract violated: {:?}",
            v.violations
        );
        assert_eq!(v.predicted_cause, cause, "{name}: predicted cause moved");
        assert_eq!(v.measured_cause, cause, "{name}: measured cause moved");
        assert!(v.measured_stalls > 0, "{name}: run recorded no stalls");
    }
}

/// The analysis report renders byte-identically across invocations and
/// matches the committed `ANALYSIS_baseline.json` (regenerate with
/// `apir-trace analyze --json ANALYSIS_baseline.json` after an
/// intentional analysis change).
#[test]
fn analysis_report_matches_committed_baseline() {
    let mut a = analysis_report(Scale::Tiny).render_pretty();
    a.push('\n');
    let mut b = analysis_report(Scale::Tiny).render_pretty();
    b.push('\n');
    assert_eq!(a, b, "analysis report is not deterministic");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/ANALYSIS_baseline.json");
    let committed = std::fs::read_to_string(path).expect("ANALYSIS_baseline.json is committed");
    assert_eq!(
        a, committed,
        "ANALYSIS_baseline.json drifted; regenerate via `apir-trace analyze --json`"
    );
}
