//! Delaunay mesh refinement on the simulated accelerator.
//!
//! Builds a random Delaunay mesh of the unit square, refines every
//! triangle with a minimum angle below 21 degrees on the SPEC-DMR
//! accelerator, and validates the refined mesh structurally (adjacency
//! symmetry, orientation, no remaining bad triangles, area preserved).
//!
//! Run with: `cargo run --release --example mesh_refinement`

use apir::apps::dmr;
use apir::fabric::{Fabric, FabricConfig};
use apir::workloads::delaunay::Mesh;
use std::sync::Arc;

fn main() {
    let threshold = 21.0;
    let mesh = Arc::new(Mesh::random(120, 9));
    let initial_bad = mesh.bad_triangles(threshold).len();
    println!(
        "initial mesh: {} points, {} triangles, {} bad (min angle < {threshold} deg)",
        mesh.points().len(),
        mesh.alive_count(),
        initial_bad
    );

    let app = dmr::build(mesh.clone(), threshold);
    let report = Fabric::new(&app.spec, &app.input, FabricConfig::default())
        .run()
        .expect("refinement runs");
    (app.check)(&report.mem_image).expect("refined mesh is valid");

    println!(
        "accelerator: {} cycles ({:.2} ms at 200 MHz), {} cavity operations",
        report.cycles,
        report.seconds * 1e3,
        report.extern_calls
    );
    println!(
        "  tasks retired: {}   squashed (stale triangles): {}   QPI traffic: {} KiB",
        report.total_retired(),
        report.squashes,
        report.mem.qpi_bytes / 1024
    );

    // Software reference for comparison.
    let work = dmr::sequential_dmr(&mesh, threshold);
    println!("software refinement performed {work} cavity-work units");
    println!("refined mesh passes structural validation.");
}
