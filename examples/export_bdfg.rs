//! Exports a benchmark's specification in two forms:
//!
//! * the pretty-printed task/rule pseudo-code (what the programmer wrote);
//! * the Boolean Dataflow Graph in Graphviz DOT (what gets synthesized).
//!
//! Run with: `cargo run --example export_bdfg -- SPEC-BFS bdfg.dot`

use apir::core::bdfg::Bdfg;
use apir::core::pretty;
use apir::workloads::gen;
use std::sync::Arc;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "SPEC-BFS".to_string());
    let out_path = args.next();

    let g = Arc::new(gen::road_network(8, 8, 0.9, 4, 1));
    let app = match name.as_str() {
        "SPEC-BFS" => apir::apps::bfs::build(g, 0, apir::apps::bfs::BfsVariant::Spec),
        "COOR-BFS" => apir::apps::bfs::build(g, 0, apir::apps::bfs::BfsVariant::Coor),
        "SPEC-SSSP" => apir::apps::sssp::build(g, 0),
        "SPEC-MST" => {
            let edges = Arc::new(gen::edge_list_distinct_weights(32, 96, 1));
            apir::apps::mst::build(32, edges)
        }
        "SPEC-DMR" => {
            let mesh = Arc::new(apir::workloads::delaunay::Mesh::random(20, 1));
            apir::apps::dmr::build(mesh, 21.0)
        }
        "COOR-LU" => apir::apps::lu::build(
            &apir::workloads::sparse::BlockPattern::random(4, 0.5, 1),
            4,
            1,
        ),
        other => {
            eprintln!("unknown app `{other}`");
            std::process::exit(2);
        }
    };

    println!("{}", pretty::render(&app.spec));

    let report = apir::check::check_all(&app.spec);
    if report.diagnostics().is_empty() {
        println!("// lint: clean");
    } else {
        for line in report.render_text().lines() {
            println!("// lint: {line}");
        }
    }

    let bdfg = Bdfg::from_spec(&app.spec);
    bdfg.validate().expect("BDFG is well-formed");
    let sum = bdfg.summary();
    println!(
        "// BDFG: {} actors, {} channels, {} rule engines, {} memory ops",
        sum.actors, sum.edges, sum.rule_engines, sum.memory_ops
    );
    let dot = bdfg.to_dot(&app.spec);
    match out_path {
        Some(p) => {
            std::fs::write(&p, dot).expect("write DOT file");
            println!("// DOT graph written to {p}");
        }
        None => println!("{dot}"),
    }
}
