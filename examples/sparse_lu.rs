//! Coordinative sparse blocked LU factorization (COOR-LU).
//!
//! The host enumerates block tasks and their runtime dependence graph
//! (the "kinetic dependence graph"); the accelerator's commit units
//! release successors as their dependences resolve — barrier-free
//! dataflow over an input-dependent task graph. The result is checked
//! element-wise against an unblocked reference factorization.
//!
//! Run with: `cargo run --release --example sparse_lu`

use apir::apps::lu;
use apir::fabric::{Fabric, FabricConfig};
use apir::workloads::sparse::{lu_dependence_graph, BlockPattern};

fn main() {
    let nb = 8;
    let bs = 8;
    let pattern = BlockPattern::random(nb, 0.35, 17);
    let filled = pattern.with_fill();
    let graph = lu_dependence_graph(&filled);
    let depths = graph.depths();
    println!(
        "pattern: {}x{} blocks of {}x{}, {} nonzero blocks after fill",
        nb,
        nb,
        bs,
        bs,
        filled.nnz_blocks()
    );
    println!(
        "task graph: {} tasks, {} dependence edges, critical path {} levels",
        graph.tasks.len(),
        graph.succ_idx.len(),
        depths.iter().max().unwrap() + 1
    );

    let app = lu::build(&pattern, bs, 17);
    let report = Fabric::new(&app.spec, &app.input, FabricConfig::default())
        .run()
        .expect("factorization runs");
    (app.check)(&report.mem_image).expect("LU matches the reference");

    println!(
        "accelerator: {} cycles ({:.2} ms at 200 MHz), {} block kernels executed",
        report.cycles,
        report.seconds * 1e3,
        report.extern_calls
    );
    println!(
        "  QPI traffic: {} KiB   pipeline utilization: {:.1}%",
        report.mem.qpi_bytes / 1024,
        report.utilization * 100.0
    );
    println!("factorization verified against the unblocked reference.");
}
