//! Breadth-first search over a road-network-style graph: the paper's
//! flagship benchmark, in both aggressive-parallelization flavours.
//!
//! Compares the speculative and coordinative accelerators against the
//! OpenCL-HLS baseline (Table 1's three columns) on one input, and prints
//! schedule statistics showing *why* dataflow wins (no barriers, no host
//! round trips).
//!
//! Run with: `cargo run --release --example road_network_bfs`

use apir::apps::bfs::{self, BfsVariant};
use apir::fabric::{Fabric, FabricConfig};
use apir::synth::hls::HlsBfsModel;
use apir::workloads::gen;
use std::sync::Arc;

fn main() {
    // A 40x40 grid with dropped edges and shortcut diagonals: high
    // diameter and near-uniform low degree, like the DIMACS road graphs.
    let g = Arc::new(gen::road_network(40, 40, 0.93, 8, 7));
    println!(
        "graph: {} vertices, {} directed edges, BFS depth {}",
        g.num_vertices(),
        g.num_edges(),
        g.bfs_depth(0)
    );

    // OpenCL-HLS baseline: kernel iteration with barriers.
    let hls = HlsBfsModel::default().run(&g, 0);
    println!(
        "\nOpenCL-style HLS accelerator: {:>12.1} us  ({} kernel-pair launches)",
        hls.seconds * 1e6,
        hls.levels
    );

    for variant in [BfsVariant::Spec, BfsVariant::Coor] {
        let app = bfs::build(g.clone(), 0, variant);
        let report = Fabric::new(&app.spec, &app.input, FabricConfig::default())
            .run()
            .expect("accelerator runs");
        (app.check)(&report.mem_image).expect("levels correct");
        println!(
            "{:<28}: {:>12.1} us  ({} cycles, {:.1}% pipeline utilization, {} squashes)",
            app.name,
            report.seconds * 1e6,
            report.cycles,
            report.utilization * 100.0,
            report.squashes
        );
        println!(
            "   speedup over HLS: {:>8.0}x   cache hit rate: {:.1}%   QPI traffic: {} KiB",
            hls.seconds / report.seconds,
            100.0 * report.mem.hits as f64 / (report.mem.hits + report.mem.misses).max(1) as f64,
            report.mem.qpi_bytes / 1024
        );
    }
}
