//! Quickstart: specify a tiny irregular application as tasks + rules,
//! debug it on the sequential interpreter and the software runtime, then
//! synthesize and run the simulated FPGA accelerator.
//!
//! Run with: `cargo run --example quickstart`

use apir::core::interp::SeqInterp;
use apir::core::op::AluOp;
use apir::core::spec::{Spec, TaskSetKind};
use apir::core::{MemAccess, ProgramInput};
use apir::fabric::FabricConfig;
use apir::runtime::{ParConfig, ParRunner};
use apir::synth::flow::{synthesize, SynthesisTarget};

fn main() {
    // 1. Specify: tasks that chase a linked list in memory, summing the
    //    payloads — a classic statically unpredictable access pattern.
    //    Each task loads node payload + next pointer and recirculates
    //    until it hits the null sentinel.
    let mut spec = Spec::new("list-sum");
    let nodes = spec.region("nodes", 256); // [payload, next] pairs
    let sums = spec.region("sums", 8);
    let walk = spec.task_set("walk", TaskSetKind::ForEach, 1, &["node", "acc", "out"]);
    let mut b = spec.body(walk);
    let node = b.field(0);
    let acc = b.field(1);
    let out = b.field(2);
    let two = b.konst(2);
    let off = b.alu(AluOp::Mul, node, two);
    let payload = b.load(nodes, off);
    let one = b.konst(1);
    let noff = b.alu(AluOp::Add, off, one);
    let next = b.load(nodes, noff);
    let acc2 = b.alu(AluOp::Add, acc, payload);
    let nil = b.konst(u64::MAX);
    let zero = b.konst(0);
    let done = b.alu(AluOp::Eq, next, nil);
    let more = b.alu(AluOp::Eq, done, zero);
    b.requeue(&[next, acc2, out], Some(more));
    b.store(sums, out, acc2, apir::core::op::StoreKind::Plain, Some(done));
    b.finish();
    let spec = spec.build().expect("spec validates");

    // 2. Seed: two linked lists through the same node pool.
    let mut input = ProgramInput::new(&spec);
    // List A: 0 -> 2 -> 4 (payloads 10, 20, 30).
    for (i, (p, n)) in [(10u64, 2u64), (0, 0), (20, 4), (0, 0), (30, u64::MAX)]
        .iter()
        .enumerate()
    {
        input.mem.fill(apir::core::spec::RegionId(0), 2 * i, &[*p, *n]);
    }
    // List B: 1 -> 3 (payloads 7, 8).
    input.mem.fill(apir::core::spec::RegionId(0), 2 * 1, &[7, 3]);
    input.mem.fill(apir::core::spec::RegionId(0), 2 * 3, &[8, u64::MAX]);
    input.seed(&spec, walk, &[0, 0, 0]); // list A into sums[0]
    input.seed(&spec, walk, &[1, 0, 1]); // list B into sums[1]

    // 3. Golden model: sequential execution (Definition 4.3).
    let seq = SeqInterp::run(&spec, &input).expect("sequential run");
    println!("sequential:   sums = [{}, {}]", seq.mem.read(sums, 0), seq.mem.read(sums, 1));

    // 4. Software debugging runtime (round-based speculation).
    let par = ParRunner::run(&spec, &input, ParConfig::default()).expect("software runtime");
    println!(
        "sw runtime:   sums = [{}, {}]  (rounds: {}, aborts: {})",
        par.mem.read(sums, 0),
        par.mem.read(sums, 1),
        par.rounds,
        par.aborts
    );

    // 5. Synthesize an accelerator and run the cycle-level model.
    let design = synthesize(&spec, FabricConfig::default(), SynthesisTarget::default());
    println!(
        "synthesized:  {} pipelines/set, {} registers ({}% of Stratix V)",
        design.cfg.pipelines_per_set,
        design.resources.total_registers(),
        (design.resources.total_registers() * 100) / apir::fabric::StratixV::REGISTERS
    );
    let report = design.run(&spec, &input).expect("fabric run");
    println!(
        "accelerator:  sums = [{}, {}]  in {} cycles ({:.2} us at 200 MHz)",
        report.mem_image.read(sums, 0),
        report.mem_image.read(sums, 1),
        report.cycles,
        report.seconds * 1e6
    );
    assert!(report.mem_image.diff(&seq.mem, 1).is_empty(), "engines agree");
    println!("all three engines agree.");
}
