//! Facade crate re-exporting the APIR framework.
pub use apir_apps as apps;
pub use apir_bench as bench;
pub use apir_campaign as campaign;
pub use apir_check as check;
pub use apir_core as core;
pub use apir_fabric as fabric;
pub use apir_runtime as runtime;
pub use apir_sim as sim;
pub use apir_synth as synth;
pub use apir_trace as trace;
pub use apir_util as util;
pub use apir_workloads as workloads;
